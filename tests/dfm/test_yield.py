"""Tests for the process-window yield model."""

import pytest

from repro.dfm import ExposureDistribution, process_window_yield
from repro.geometry import Polygon, Rect
from repro.litho import LithographySimulator
from repro.opc import apply_model_opc
from repro.pdk import make_tech_90nm


@pytest.fixture(scope="module")
def sim():
    tech = make_tech_90nm()
    simulator = LithographySimulator.for_tech(tech)
    simulator.calibrate_to_anchor(tech.rules.gate_length, tech.rules.poly_pitch)
    return simulator


@pytest.fixture(scope="module")
def dense_lines():
    return [Polygon.from_rect(Rect(i * 320 - 45, -600, i * 320 + 45, 600))
            for i in range(-1, 2)]


@pytest.fixture(scope="module")
def dense_mask(sim, dense_lines):
    """Model-OPC-corrected mask: without correction the line-end pullback
    already fails ORC at nominal (a real result, not a test artifact)."""
    return apply_model_opc(sim, dense_lines).polygons


class TestExposureDistribution:
    def test_nominal_has_peak_weight(self):
        from repro.litho.resist import ProcessCondition

        dist = ExposureDistribution()
        nominal = dist.weight(ProcessCondition())
        off = dist.weight(ProcessCondition(dose=1.03, defocus_nm=120))
        assert nominal == pytest.approx(1.0)
        assert off < nominal


class TestProcessWindowYield:
    def test_anchor_pattern_survives_nominal(self, sim, dense_lines, dense_mask):
        result = process_window_yield(
            sim, dense_mask, dense_lines,
            doses=(1.0,), defoci=(0.0,),
        )
        assert result.outcomes[(1.0, 0.0)] is True
        assert result.weighted_yield == 1.0

    def test_extreme_conditions_kill_yield(self, sim, dense_lines, dense_mask):
        result = process_window_yield(
            sim, dense_mask, dense_lines,
            doses=(1.0, 1.5), defoci=(0.0, 500.0),
        )
        assert result.outcomes[(1.0, 0.0)] is True
        assert result.outcomes[(1.5, 500.0)] is False
        assert 0.0 < result.weighted_yield < 1.0
        assert result.window_fraction < 1.0

    def test_weighting_discounts_rare_conditions(self, sim, dense_lines, dense_mask):
        # The failing corner is far out in the scanner distribution, so the
        # weighted yield is much better than the raw window fraction.
        result = process_window_yield(
            sim, dense_mask, dense_lines,
            doses=(1.0, 1.5), defoci=(0.0, 500.0),
            distribution=ExposureDistribution(dose_sigma=0.015, defocus_sigma_nm=60),
        )
        assert result.weighted_yield > result.window_fraction

    def test_opc_improves_window(self, sim):
        iso = [Polygon.from_rect(Rect(-45, -600, 45, 600))]
        corrected = apply_model_opc(sim, iso).polygons
        doses = (0.97, 1.0, 1.03)
        defoci = (0.0, 200.0)
        raw = process_window_yield(sim, iso, iso, doses, defoci)
        fixed = process_window_yield(sim, corrected, iso, doses, defoci)
        assert fixed.window_fraction >= raw.window_fraction

    def test_passing_conditions_listing(self, sim, dense_lines, dense_mask):
        result = process_window_yield(
            sim, dense_mask, dense_lines, doses=(1.0,), defoci=(0.0, 500.0),
        )
        assert (1.0, 0.0) in result.passing_conditions
