"""Chaos suite: seeded fault plans drive every failure mode to its
documented terminal state in bounded time.

Fault classes and their contracts (see architecture.md "Service
hardening"):

* ``disk-read`` corruption  -> recompute, job completes (exit 0);
* ``disk-write`` failure    -> memory-only degradation, job completes;
* ``journal-write`` failure -> job fails (exit 1), service survives;
* ``stage-run`` crash       -> StageError, job fails (exit 1), breaker
  counts it;
* ``stage-hang``            -> hung-stage watchdog fails the job
  (exit 2) and the worker moves on to the next queued job;
* ``chunk`` (worker kill)   -> retried, bit-identical results;
* ``socket`` drop           -> client sees EOF, reconnect works.

Deadlines, the circuit-breaker state machine, and orphan-job recovery
ride the same harness.  Every fault is seeded through
:meth:`FaultPlan.seeded`, so a failure here reproduces with its seed.
"""

import asyncio
import json
import threading
import time

import pytest

from repro.cells import build_library
from repro.circuits import c17
from repro.flow import (
    EXIT_FAILURE,
    EXIT_INTERRUPTED,
    ChaosError,
    CircuitBreaker,
    FaultPlan,
    FaultSpec,
    FlowConfig,
    FlowContext,
    FlowService,
    InputValidationError,
    ParallelExecutor,
    PostOpcTimingFlow,
    RunJournal,
    ServiceRejectedError,
    stable_hash,
)
from repro.flow.chaos import SITES, inject_stage_fault
from repro.flow.service import _WIRE_CONFIG_FIELDS
from repro.pdk import make_tech_90nm

pytestmark = pytest.mark.timeout(120)

FAST = FlowConfig(opc_mode="rule", clock_period_ps=500)


@pytest.fixture(scope="module")
def tech():
    return make_tech_90nm()


@pytest.fixture(scope="module")
def lib(tech):
    return build_library(tech)


def _flow(tech, lib, **kwargs):
    return PostOpcTimingFlow(c17(lib), tech, cells=lib, **kwargs)


def _flows(tech, lib, **kwargs):
    return {"c17": _flow(tech, lib, **kwargs)}


# -- the harness itself -------------------------------------------------------


class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(InputValidationError):
            FaultSpec(site="warp-core")
        with pytest.raises(InputValidationError):
            FaultSpec(site="chunk", times=0)
        with pytest.raises(InputValidationError):
            FaultSpec(site="stage-hang", delay_s=0.0)

    def test_seeded_covers_every_site_and_is_deterministic(self):
        sites = {FaultPlan.seeded(seed)[1].site for seed in range(len(SITES))}
        assert sites == set(SITES)
        assert FaultPlan.seeded(3)[1] == FaultPlan.seeded(3)[1]
        # stage faults get a deterministic stage target from the seed
        for seed in range(20):
            _, spec = FaultPlan.seeded(seed, site="stage-run")
            assert spec.match == FaultPlan.seeded(seed, site="stage-run")[1].match
            assert spec.match  # always targets a concrete stage

    def test_trigger_consumes_tokens_and_matches(self):
        plan = FaultPlan([FaultSpec(site="stage-run", match="opc", times=2)])
        assert plan.trigger("disk-read") is None  # wrong site
        assert plan.trigger("stage-run", "place") is None  # wrong key
        assert plan.trigger("stage-run", "opc") is not None
        assert plan.trigger("stage-run", "opc") is not None
        assert plan.trigger("stage-run", "opc") is None  # tokens spent
        assert plan.fired == {"stage-run": 2}

    def test_release_unblocks_an_injected_hang(self):
        plan, spec = FaultPlan.seeded(4, delay_s=30.0)
        assert spec.site == "stage-hang"
        releaser = threading.Timer(0.1, plan.release)
        releaser.start()
        t0 = time.monotonic()
        plan.hang(spec)
        releaser.join()
        assert time.monotonic() - t0 < 5.0  # woke early, not after 30s

    def test_inject_stage_fault_raises_chaos_error(self):
        plan = FaultPlan([FaultSpec(site="stage-run", match="opc")])
        inject_stage_fault(plan, "place")  # no match: no-op
        with pytest.raises(ChaosError):
            inject_stage_fault(plan, "opc")


class TestCircuitBreaker:
    def test_state_machine(self):
        clock = {"t": 0.0}
        breaker = CircuitBreaker(2, 10.0, time_fn=lambda: clock["t"])
        assert breaker.admit() is None
        breaker.record(False)
        assert breaker.admit() is None  # one failure below threshold
        breaker.record(False)
        assert breaker.state == "open"
        assert breaker.admit() == pytest.approx(10.0)
        clock["t"] = 6.0
        assert breaker.admit() == pytest.approx(4.0)
        clock["t"] = 11.0
        assert breaker.admit() is None  # the half-open probe
        assert breaker.state == "half-open"
        assert breaker.admit() is not None  # only one probe at a time
        breaker.record(False)  # probe failed: straight back to open
        assert breaker.state == "open"
        clock["t"] = 22.0
        assert breaker.admit() is None
        breaker.record(True)  # probe succeeded
        assert breaker.state == "closed" and breaker.failures == 0
        assert breaker.admit() is None

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(0, 1.0)
        with pytest.raises(ValueError):
            CircuitBreaker(1, 0.0)


# -- cache-layer faults -------------------------------------------------------


class TestDiskFaults:
    def test_disk_corruption_recovers_bit_identical(self, tech, lib, tmp_path):
        cache_dir = str(tmp_path / "cache")
        baseline = _flow(
            tech, lib, context=FlowContext(cache_dir=cache_dir)
        ).run(FAST)

        plan, spec = FaultPlan.seeded(0)
        assert spec.site == "disk-read"
        ctx = FlowContext(cache_dir=cache_dir, fault_plan=plan)
        report = _flow(tech, lib, context=ctx).run(FAST)

        assert plan.fired["disk-read"] == 1
        assert ctx.disk_corruptions == 1  # injected rot was detected...
        assert report.wns_post == baseline.wns_post  # ...and recomputed
        assert report.leakage_post == baseline.leakage_post
        assert ctx.consistency() == []

    def test_disk_write_failure_degrades_to_memory(self, tech, lib, tmp_path):
        plan, spec = FaultPlan.seeded(1, times=2)
        assert spec.site == "disk-write"
        ctx = FlowContext(cache_dir=str(tmp_path / "cache"), fault_plan=plan)
        report = _flow(tech, lib, context=ctx).run(FAST)
        assert plan.fired["disk-write"] == 2
        assert ctx.disk_write_errors == 2
        assert report.post_sta is not None  # the run still completed


# -- service-layer faults -----------------------------------------------------


class TestServiceFaults:
    def test_journal_write_failure_fails_job_service_survives(
        self, tech, lib, tmp_path
    ):
        plan, spec = FaultPlan.seeded(2)
        assert spec.site == "journal-write"

        async def scenario():
            async with FlowService(
                _flows(tech, lib), run_root=str(tmp_path),
                fault_plan=plan,
            ) as service:
                doomed = service.submit("c17", config=FAST)
                first = await service.report(doomed, timeout=600)
                healthy = service.submit("c17", config=FAST)
                second = await service.report(healthy, timeout=600)
                return first, second

        first, second = asyncio.run(scenario())
        assert first["state"] == "failed"
        assert first["exit_code"] == EXIT_FAILURE
        assert "chaos: injected journal write failure" in first["error"]
        assert second["state"] == "done" and second["exit_code"] == 0
        assert plan.fired["journal-write"] == 1

    def test_stage_crash_fails_job_and_breaker_counts_it(
        self, tech, lib
    ):
        plan, spec = FaultPlan.seeded(3)
        assert spec.site == "stage-run"
        ctx = FlowContext(fault_plan=plan)

        async def scenario():
            async with FlowService(_flows(tech, lib, context=ctx)) as service:
                job = service.submit("c17", config=FAST)
                report = await service.report(job, timeout=600)
                with pytest.raises(ServiceRejectedError) as excinfo:
                    await service.result(job, timeout=600)
                return report, excinfo.value.reason, service.health()

        report, reason, health = asyncio.run(scenario())
        assert report["state"] == "failed"
        assert report["exit_code"] == EXIT_FAILURE
        assert "ChaosError" in report["error"]
        assert spec.match in report["error"]  # names the injected stage
        assert reason == "failed-job"
        assert health["breakers"]["c17"]["consecutive_failures"] == 1
        assert plan.fired["stage-run"] == 1

    def test_watchdog_fails_hung_job_while_next_job_completes(
        self, tech, lib, tmp_path
    ):
        plan, spec = FaultPlan.seeded(4, delay_s=30.0)
        assert spec.site == "stage-hang"
        ctx = FlowContext(fault_plan=plan)
        flows = _flows(tech, lib, context=ctx)

        async def scenario():
            try:
                # stage_timeout must exceed the longest *healthy* stage
                # compute (~1s for c17's litho stage: heartbeats are per
                # settle, so a slow stage is legitimately silent) while
                # staying far below the 30s injected hang.
                async with FlowService(
                    flows, workers=1, run_root=str(tmp_path),
                    stage_timeout_s=4.0, watchdog_poll_s=0.05,
                ) as service:
                    # The queued job must not share the hung stage's
                    # artifact key (seed 4 hangs "opc", and opc_mode is in
                    # that stage's config slice), or it would block on the
                    # hung job's in-flight settle and get watchdog-killed
                    # too.
                    hung = service.submit("c17", config=FAST)
                    queued = service.submit(
                        "c17",
                        config=FlowConfig(opc_mode="none",
                                          clock_period_ps=600),
                    )
                    hung_report = await service.report(hung, timeout=600)
                    queued_report = await service.report(queued, timeout=600)
                    return hung_report, queued_report
            finally:
                plan.release()  # free the wedged worker thread

        hung_report, queued_report = asyncio.run(scenario())
        assert hung_report["state"] == "failed"
        assert hung_report["exit_code"] == EXIT_INTERRUPTED
        assert hung_report["reason"] == "hung-stage"
        assert "no scheduler heartbeat" in hung_report["error"]
        # the single worker was recycled, not pinned:
        assert queued_report["state"] == "done"
        assert queued_report["exit_code"] == 0
        assert plan.fired["stage-hang"] == 1
        # the journal carries the watchdog's verdict as the terminal record
        records = [
            json.loads(line)
            for line in (tmp_path / hung_report["id"] / "journal.jsonl")
            .read_text().splitlines()
        ]
        assert records[-1]["type"] == "failed"
        assert records[-1]["reason"] == "hung-stage"

    def test_deadline_exceeded_fails_job_with_exit_2(self, tech, lib):
        async def scenario():
            async with FlowService(
                _flows(tech, lib), workers=1, watchdog_poll_s=0.05,
            ) as service:
                job = service.submit("c17", config=FAST, deadline_s=0.2)
                report = await service.report(job, timeout=600)
                with pytest.raises(ServiceRejectedError) as excinfo:
                    await service.result(job, timeout=600)
                return report, excinfo.value.reason

        report, reason = asyncio.run(scenario())
        assert report["state"] == "failed"
        assert report["exit_code"] == EXIT_INTERRUPTED
        assert report["reason"] == "deadline"
        assert "deadline exceeded" in report["error"]
        assert reason == "deadline"

    def test_config_deadline_is_honored_too(self, tech, lib):
        config = FlowConfig(opc_mode="rule", clock_period_ps=500,
                            deadline_s=0.2)

        async def scenario():
            async with FlowService(
                _flows(tech, lib), watchdog_poll_s=0.05,
            ) as service:
                job = service.submit("c17", config=config)
                return await service.report(job, timeout=600)

        report = asyncio.run(scenario())
        assert report["state"] == "failed"
        assert report["reason"] == "deadline"

    def test_breaker_opens_after_failures_and_probe_recovers(
        self, tech, lib
    ):
        plan = FaultPlan([FaultSpec(site="stage-run", match="", times=1)])
        ctx = FlowContext(fault_plan=plan)

        async def scenario():
            async with FlowService(
                _flows(tech, lib, context=ctx),
                breaker_threshold=1, breaker_cooldown_s=0.3,
            ) as service:
                doomed = service.submit("c17", config=FAST)
                await service.report(doomed, timeout=600)
                with pytest.raises(ServiceRejectedError) as excinfo:
                    service.submit("c17", config=FAST)
                rejection = excinfo.value
                open_state = service.health()["breakers"]["c17"]["state"]
                await asyncio.sleep(0.35)
                probe = service.submit("c17", config=FAST)  # half-open
                probe_report = await service.report(probe, timeout=600)
                closed_state = service.health()["breakers"]["c17"]["state"]
                return rejection, open_state, probe_report, closed_state

        rejection, open_state, probe_report, closed_state = \
            asyncio.run(scenario())
        assert rejection.reason == "circuit-open"
        assert rejection.retry_after is not None
        assert 0.0 < rejection.retry_after <= 0.3
        assert open_state == "open"
        assert probe_report["state"] == "done"
        assert closed_state == "closed"

    def test_socket_drop_client_reconnects(self, tech, lib, tmp_path):
        plan, spec = FaultPlan.seeded(6)
        assert spec.site == "socket"
        socket_path = str(tmp_path / "chaos.sock")

        async def rpc(request):
            reader, writer = await asyncio.open_unix_connection(socket_path)
            writer.write(json.dumps(request).encode() + b"\n")
            await writer.drain()
            line = await reader.readline()
            writer.close()
            await writer.wait_closed()
            return line

        async def scenario():
            async with FlowService(
                _flows(tech, lib), fault_plan=plan,
            ) as service:
                await service.serve_unix(socket_path)
                dropped = await rpc({"op": "ping"})
                retried = await rpc({"op": "ping"})
                return dropped, retried

        dropped, retried = asyncio.run(scenario())
        assert dropped == b""  # injected drop: EOF instead of a response
        assert json.loads(retried)["ok"] is True
        assert plan.fired["socket"] == 1


# -- executor-layer faults ----------------------------------------------------


def _triple_chunk(payload):
    shared, chunk = payload
    return [shared * x for x in chunk]


class TestChunkFaults:
    def test_injected_worker_kill_is_retried_bit_identical(self):
        plan, spec = FaultPlan.seeded(5)
        assert spec.site == "chunk"
        tasks = list(range(23))
        expected = ParallelExecutor("serial").map_chunks(
            _triple_chunk, 3, tasks
        )
        ex = ParallelExecutor("thread", jobs=4, retries=1, fault_plan=plan)
        counters = {}
        got = ex.map_chunks(_triple_chunk, 3, tasks, counters=counters)
        assert got == expected
        assert plan.fired["chunk"] == 1
        assert ex.stats["chunk_failures"] == 1
        assert ex.stats["retries"] == 1
        assert ex.stats["abandoned"] == 0
        assert counters["worker_failures"] == 1


# -- crash recovery -----------------------------------------------------------


def _orphan_manifest(flow, config):
    return {
        "design": "c17",
        "op": "flow",
        "fingerprint": flow.fingerprint,
        "config_hash": stable_hash(config),
        "config_wire": {
            name: getattr(config, name) for name in _WIRE_CONFIG_FIELDS
        },
    }


class TestOrphanRecovery:
    def test_orphan_resumes_and_counter_advances(self, tech, lib, tmp_path):
        flows = _flows(tech, lib)
        journal = RunJournal.create(
            str(tmp_path / "job-0007"),
            _orphan_manifest(flows["c17"], FAST),
        )
        journal.record_event("start", "place", "k0")
        journal.close()

        async def scenario():
            async with FlowService(
                flows, run_root=str(tmp_path)
            ) as service:
                assert "job-0007" in service.jobs
                orphan = await service.report("job-0007", timeout=600)
                fresh = service.submit("c17", config=FAST)
                await service.report(fresh, timeout=600)
                return orphan, fresh

        orphan, fresh = asyncio.run(scenario())
        assert orphan["state"] == "done" and orphan["exit_code"] == 0
        assert orphan["resumed"] is True
        assert fresh == "job-0008"  # counter advanced past the orphan
        types = [
            json.loads(line)["type"]
            for line in (tmp_path / "job-0007" / "journal.jsonl")
            .read_text().splitlines()
        ]
        assert "resumed" in types and types[-1] == "complete"

    def test_unresumable_orphan_fails_terminally(self, tech, lib, tmp_path):
        flows = _flows(tech, lib)
        manifest = _orphan_manifest(flows["c17"], FAST)
        manifest["fingerprint"] = "deadbeef"  # a different build's run
        journal = RunJournal.create(str(tmp_path / "job-0009"), manifest)
        journal.close()

        async def scenario():
            async with FlowService(
                flows, run_root=str(tmp_path)
            ) as service:
                status = service.status("job-0009")
                fresh = service.submit("c17", config=FAST)
                await service.report(fresh, timeout=600)
            # second restart: the journaled verdict is terminal, so the
            # scan skips it instead of retrying forever
            async with FlowService(
                flows, run_root=str(tmp_path)
            ) as service2:
                return status, fresh, set(service2.jobs)

        status, fresh, second_jobs = asyncio.run(scenario())
        assert status["state"] == "failed"
        assert "orphan not resumable" in status["error"]
        assert fresh == "job-0010"
        assert "job-0009" not in second_jobs

    def test_terminal_runs_are_not_re_enqueued(self, tech, lib, tmp_path):
        flows = _flows(tech, lib)

        async def first_life():
            async with FlowService(
                flows, run_root=str(tmp_path)
            ) as service:
                job = service.submit("c17", config=FAST)
                return await service.report(job, timeout=600)

        async def second_life():
            async with FlowService(
                flows, run_root=str(tmp_path)
            ) as service:
                return set(service.jobs), service.submit("c17", config=FAST)

        first = asyncio.run(first_life())
        assert first["state"] == "done"
        jobs, fresh = asyncio.run(second_life())
        assert jobs == set()  # the completed run was left alone
        assert fresh == "job-0002"  # ...but still owns its id range
