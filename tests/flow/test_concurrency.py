"""FlowContext correctness under concurrent access.

The async scheduler and the flow service settle many stages against one
shared context at once, so the cache must guarantee: single-flight
computation (N concurrent requests for one key compute once), recovery
from disk corruption under contention, eviction never tearing an entry
out from under a promote, and counter books that balance exactly
(consistency() is how the trace proves its dedup/hit claims).
"""

import glob
import os
import threading
import time

import pytest

from repro.flow import FlowContext
from repro.flow.context import MISSING


def _hammer(n_threads, target):
    """Run ``target(i)`` on n threads through a start barrier."""
    barrier = threading.Barrier(n_threads)
    errors = []

    def _run(i):
        barrier.wait()
        try:
            target(i)
        except BaseException as exc:  # noqa: BLE001 - surfaced to the test
            errors.append(exc)

    threads = [threading.Thread(target=_run, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return errors


class TestSingleFlight:
    def test_n_settles_one_compute(self):
        ctx = FlowContext()
        computes = []

        def compute():
            computes.append(1)
            # slow enough that the other settles arrive while the first
            # computation is in flight — the single-flight path proper
            time.sleep(0.2)
            return "artifact"

        outcomes = {}

        def settle(i):
            outcomes[i] = ctx.settle("stage", "k1", compute)

        assert _hammer(8, settle) == []
        assert len(computes) == 1
        assert all(o.value == "artifact" for o in outcomes.values())
        # exactly one miss computed; the other 7 were served, each one
        # blocked on the in-flight computation and counted as deduped
        assert ctx.misses["stage"] == 1 and ctx.hits["stage"] == 7
        assert ctx.deduped == 7
        assert sum(1 for o in outcomes.values() if o.deduped) == 7
        assert sum(1 for o in outcomes.values() if not o.cache_hit) == 1
        assert ctx.consistency() == []

    def test_distinct_keys_do_not_serialize(self):
        ctx = FlowContext()

        def settle(i):
            ctx.settle("stage", f"k{i}", lambda: i)

        assert _hammer(6, settle) == []
        assert ctx.misses["stage"] == 6
        assert ctx.deduped == 0
        assert ctx.consistency() == []

    def test_compute_failure_not_cached_next_caller_retries(self):
        ctx = FlowContext()
        attempts = []

        def failing():
            attempts.append(1)
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            ctx.settle("stage", "k1", failing)
        assert ctx.lookup("k1") is MISSING
        outcome = ctx.settle("stage", "k1", lambda: "recovered")
        assert outcome.value == "recovered" and not outcome.cache_hit
        assert len(attempts) == 1

    def test_key_lock_table_drains(self):
        ctx = FlowContext()

        def settle(i):
            ctx.settle("stage", "shared", lambda: 42)

        assert _hammer(8, settle) == []
        # refcounted per-key locks are torn down at quiescence: no
        # unbounded growth across a sweep's thousands of keys
        assert ctx._key_locks == {}


class TestDiskUnderContention:
    def test_corrupt_entry_recomputed_once(self, tmp_path):
        cache = str(tmp_path / "cache")
        writer = FlowContext(cache_dir=cache)
        writer.settle("stage", "k1", lambda: {"payload": 7})

        # Corrupt the payload on disk; a fresh context (cold memory tier)
        # must detect it via the sidecar hash and recompute exactly once
        # even with every thread racing to load it.
        [data_path] = glob.glob(os.path.join(cache, "*.pkl"))
        with open(data_path, "wb") as fh:
            fh.write(b"garbage")

        reader = FlowContext(cache_dir=cache)
        computes = []

        def compute():
            computes.append(1)
            return {"payload": 7}

        def settle(i):
            assert reader.settle("stage", "k1", compute).value == {"payload": 7}

        assert _hammer(6, settle) == []
        assert len(computes) == 1
        assert reader.disk_corruptions == 1
        assert reader.consistency() == []
        # the recompute re-wrote a good entry
        final = FlowContext(cache_dir=cache)
        assert final.lookup("k1") == {"payload": 7}
        assert final.disk_corruptions == 0

    def test_eviction_racing_promote(self, tmp_path):
        cache = str(tmp_path / "cache")
        # cap so small that every new store evicts older entries
        ctx = FlowContext(cache_dir=cache, max_disk_bytes=600)
        ctx.store("hot", b"x" * 100)

        def churn(i):
            if i % 2 == 0:
                for j in range(20):
                    ctx.store(f"cold-{i}-{j}", b"y" * 100)
            else:
                for _ in range(40):
                    value, _source = ctx.fetch("hot")
                    # the memory tier pins the entry even after the disk
                    # copy is evicted — a reader never sees a torn value
                    assert value == b"x" * 100

        assert _hammer(6, churn) == []
        assert ctx.disk_evictions > 0
        assert ctx.consistency() == []
        assert ctx.stats()["consistent"] is True

    def test_promote_never_clobbers_concurrent_store(self, tmp_path):
        cache = str(tmp_path / "cache")
        FlowContext(cache_dir=cache).store("k1", "from-disk")

        ctx = FlowContext(cache_dir=cache)
        results = {}

        def race(i):
            if i % 2 == 0:
                ctx.store("k1", "from-disk")
            results[i] = ctx.lookup("k1")

        assert _hammer(8, race) == []
        assert set(results.values()) == {"from-disk"}
        assert ctx.consistency() == []


class TestCounterConsistency:
    def test_books_balance_under_mixed_load(self, tmp_path):
        ctx = FlowContext(cache_dir=str(tmp_path / "cache"))
        settles = 10 * 8

        def mixed(i):
            for j in range(10):
                ctx.settle(f"stage{i % 3}", f"k{j % 4}", lambda: j)

        assert _hammer(8, mixed) == []
        assert ctx.consistency() == []
        stats = ctx.stats()
        assert stats["consistent"] is True
        # every settle does exactly one fetch and books exactly one
        # per-stage hit or miss
        assert ctx.mem_lookups == settles
        per_stage = sum(ctx.hits.values()) + sum(ctx.misses.values())
        assert per_stage == settles
        # only 4 distinct keys exist, so exactly 4 computes happened
        assert sum(ctx.misses.values()) == 4
        memory = stats["memory"]
        assert memory["lookups"] == memory["hits"] + memory["misses"]
