"""Tests for GDS export of flow artifacts."""

import dataclasses

import pytest

from repro.cells import build_library
from repro.circuits import inverter_chain
from repro.flow import FlowConfig, PostOpcTimingFlow, export_flow_gds
from repro.gds import read_gds
from repro.pdk import Layers, make_tech_90nm


@pytest.fixture(scope="module")
def flow():
    tech = make_tech_90nm()
    return PostOpcTimingFlow(inverter_chain(2), tech, cells=build_library(tech))


@pytest.fixture(scope="module")
def report(flow):
    return flow.run(FlowConfig(opc_mode="rule", clock_period_ps=400))


class TestExport:
    def test_layers_written_and_readable(self, flow, report, tmp_path):
        path = str(tmp_path / "flow.gds")
        export_flow_gds(flow, report, path)
        back = read_gds(path)
        cell = back["FLOW"]
        assert len(cell.polygons_on(Layers.POLY)) == len(flow.owned_polygons)
        assert len(cell.polygons_on(Layers.POLY_OPC)) == len(report.mask_polygons)

    def test_geometry_faithful_at_subnm_grid(self, flow, report, tmp_path):
        path = str(tmp_path / "flow.gds")
        export_flow_gds(flow, report, path)
        back = read_gds(path)
        assert back.unit_nm == pytest.approx(0.1, rel=1e-9)
        original = sorted(round(p.bbox.x0, 1) for _, p in flow.owned_polygons)
        recovered = sorted(round(p.bbox.x0, 1)
                           for p in back["FLOW"].polygons_on(Layers.POLY))
        assert original == recovered

    def test_failed_gate_markers(self, flow, report, tmp_path):
        # Mark one gate failed: exactly its gate rects land on BOUNDARY.
        owner = next(iter(flow.gate_rects))[0]
        expected = sum(1 for (name, _) in flow.gate_rects if name == owner)
        marked = dataclasses.replace(report, failed_gates=[owner])
        path = str(tmp_path / "failed.gds")
        export_flow_gds(flow, marked, path)
        back = read_gds(path)
        assert len(back["FLOW"].polygons_on(Layers.BOUNDARY)) == expected
        assert expected > 0

    def test_no_markers_without_failures(self, flow, report, tmp_path):
        path = str(tmp_path / "clean.gds")
        export_flow_gds(flow, report, path)
        assert report.failed_gates == []
        assert not read_gds(path)["FLOW"].polygons_on(Layers.BOUNDARY)

    def test_contours_on_request(self, flow, report, tmp_path):
        path = str(tmp_path / "contours.gds")
        region = next(iter(flow.gate_rects.values())).expanded(200)
        export_flow_gds(flow, report, path, contour_region=region)
        back = read_gds(path)
        contours = back["FLOW"].polygons_on(Layers.POLY_PRINTED)
        assert contours
        # Printed contours are smooth, not rectilinear.
        assert any(c.num_vertices > 8 for c in contours)
