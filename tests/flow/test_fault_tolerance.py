"""Tests for fault-tolerant parallel dispatch.

A chunk that raises, hard-kills its worker (BrokenProcessPool), or times
out is retried in a fresh pool and finally degraded to serial in-process
execution; results stay bit-identical to the serial reference and every
failure is counted on the executor and the stage trace.  Faults are
injected deterministically through the :class:`FaultInjection` hook.
"""

import time

import pytest

from repro.cells import build_library
from repro.circuits import c17
from repro.flow import FaultInjection, FlowConfig, ParallelExecutor, PostOpcTimingFlow
from repro.litho import LithographySimulator
from repro.pdk import make_tech_90nm


@pytest.fixture(scope="module")
def tech():
    return make_tech_90nm()


@pytest.fixture(scope="module")
def lib(tech):
    return build_library(tech)


def _scale_chunk(payload):
    """Module-level so the process backend can pickle it."""
    shared, chunk = payload
    return [shared * x for x in chunk]


def _slow_scale_chunk(payload):
    """Sleeps ``delay`` seconds once (first marker claim), then is fast."""
    (injection, delay, factor), chunk = payload
    if injection.claim_token() is not None:
        time.sleep(delay)
    return [factor * x for x in chunk]


def small_tile_simulator(tech):
    """A simulator whose tile grid splits even c17 into many tiles."""
    sim = LithographySimulator.for_tech(tech, ambit=600.0, max_tile_px=192)
    sim.calibrate_to_anchor(tech.rules.gate_length, tech.rules.poly_pitch)
    return sim


TASKS = list(range(13))
EXPECTED = [3 * x for x in TASKS]


class TestExecutorRetry:
    def test_injected_raise_is_retried(self, tmp_path):
        ex = ParallelExecutor("process", 2, retries=2,
                              fault_injection=FaultInjection(str(tmp_path), 1))
        assert ex.map_chunks(_scale_chunk, 3, TASKS) == EXPECTED
        assert ex.stats["chunk_failures"] == 1
        assert ex.stats["retries"] == 1
        assert ex.stats["degraded_chunks"] == 0

    def test_thread_backend_retries_too(self, tmp_path):
        ex = ParallelExecutor("thread", 2, retries=1,
                              fault_injection=FaultInjection(str(tmp_path), 1))
        assert ex.map_chunks(_scale_chunk, 3, TASKS) == EXPECTED
        assert ex.stats["retries"] == 1

    def test_exhausted_retries_degrade_to_serial(self, tmp_path):
        ex = ParallelExecutor("process", 2, retries=0,
                              fault_injection=FaultInjection(str(tmp_path), 1))
        assert ex.map_chunks(_scale_chunk, 3, TASKS) == EXPECTED
        assert ex.stats["degraded_chunks"] == 1

    def test_worker_crash_breaks_pool_and_recovers(self, tmp_path):
        injection = FaultInjection(str(tmp_path), 1, kind="exit")
        ex = ParallelExecutor("process", 3, retries=2, fault_injection=injection)
        assert ex.map_chunks(_scale_chunk, 3, TASKS) == EXPECTED
        assert ex.stats["chunk_failures"] >= 1
        assert ex.stats["retries"] >= 1

    def test_counters_dict_receives_accounting(self, tmp_path):
        ex = ParallelExecutor("process", 2, retries=1,
                              fault_injection=FaultInjection(str(tmp_path), 1))
        counters = {}
        ex.map_chunks(_scale_chunk, 3, TASKS, counters=counters)
        assert counters["worker_failures"] == 1
        assert counters["worker_retries"] == 1
        assert counters["worker_degraded"] == 0

    def test_persistent_fault_exhausts_and_propagates(self, tmp_path):
        # More faults than (first try + retries + serial fallback) calls of
        # the failing chunk: even the degraded serial run raises.
        ex = ParallelExecutor("process", jobs=1, retries=0,
                              fault_injection=FaultInjection(str(tmp_path), 99))
        with pytest.raises(RuntimeError, match="injected"):
            ex.map_chunks(_scale_chunk, 3, TASKS)

    def test_chunk_timeout_fails_and_retries(self, tmp_path):
        ex = ParallelExecutor("process", 2, retries=1, chunk_timeout=0.8)
        shared = (FaultInjection(str(tmp_path), 1), 4.0, 3)
        assert ex.map_chunks(_slow_scale_chunk, shared, TASKS) == EXPECTED
        assert ex.stats["chunk_failures"] == 1
        assert ex.stats["retries"] == 1

    def test_timeout_abandons_straggler_and_counts_it(self, tmp_path):
        # A timed-out thread cannot be killed; the round gives up on it
        # and the leak is counted so operators can see thread pressure.
        ex = ParallelExecutor("thread", 2, retries=0, chunk_timeout=0.2)
        shared = (FaultInjection(str(tmp_path), 1), 2.0, 3)
        counters = {}
        assert ex.map_chunks(_slow_scale_chunk, shared, TASKS,
                             counters=counters) == EXPECTED
        assert ex.stats["abandoned"] == 1
        assert ex.stats["degraded_chunks"] == 1
        assert counters["worker_abandoned"] == 1

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            ParallelExecutor("process", 2, retries=-1)
        with pytest.raises(ValueError):
            ParallelExecutor("process", 2, chunk_timeout=0.0)
        with pytest.raises(ValueError):
            FaultInjection("/tmp", 1, kind="segfault")


class TestFaultTolerantFlow:
    def test_crashed_worker_flow_matches_serial(self, tech, lib, tmp_path):
        """The acceptance scenario: an injected first-call worker crash,
        and the run completes bit-identical to serial with the retry
        recorded in the trace."""
        config = FlowConfig(opc_mode="none", clock_period_ps=500)
        serial = PostOpcTimingFlow(c17(lib), tech, cells=lib,
                                   simulator=small_tile_simulator(tech))
        ref = serial.run(config)
        assert ref.trace.record_for("metrology").counters["tiles"] > 1

        executor = ParallelExecutor(
            "process", 2, retries=2,
            fault_injection=FaultInjection(str(tmp_path), 1),
        )
        faulty = PostOpcTimingFlow(c17(lib), tech, cells=lib,
                                   simulator=small_tile_simulator(tech),
                                   executor=executor)
        got = faulty.run(config)

        assert got.wns_post == ref.wns_post
        assert got.wns_drawn == ref.wns_drawn
        assert got.leakage_post == ref.leakage_post
        assert got.measurements.keys() == ref.measurements.keys()
        for name, m in ref.measurements.items():
            assert got.measurements[name].slice_cds == m.slice_cds

        counters = got.trace.record_for("metrology").counters
        assert counters["worker_failures"] == 1
        assert counters["worker_retries"] == 1
        assert counters["worker_degraded"] == 0
        assert executor.stats["retries"] == 1
