"""Integration tests for the post-OPC timing flow.

These run the real pipeline (litho simulation included), so the designs
are kept tiny; the full-size runs live in benchmarks/.
"""

import pytest

from repro.cells import build_library
from repro.circuits import c17, inverter_chain
from repro.flow import FlowConfig, PostOpcTimingFlow
from repro.pdk import make_tech_90nm


@pytest.fixture(scope="module")
def tech():
    return make_tech_90nm()


@pytest.fixture(scope="module")
def lib(tech):
    return build_library(tech)


@pytest.fixture(scope="module")
def chain_flow(tech, lib):
    return PostOpcTimingFlow(inverter_chain(3), tech, cells=lib)


@pytest.fixture(scope="module")
def chain_report_none(chain_flow):
    return chain_flow.run(FlowConfig(opc_mode="none", clock_period_ps=400))


@pytest.fixture(scope="module")
def c17_flow(tech, lib):
    return PostOpcTimingFlow(c17(lib), tech, cells=lib)


class TestFlowConfig:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            FlowConfig(opc_mode="psm")


class TestFlowNoOpc(object):
    def test_every_transistor_measured(self, chain_flow, chain_report_none):
        assert set(chain_report_none.measurements) == set(chain_flow.gate_rects)

    def test_uncorrected_gates_print_thin(self, chain_report_none):
        # At the calibrated threshold, un-OPC'd cell context under-prints.
        assert chain_report_none.cd_stats.mean < -3.0

    def test_all_gates_print(self, chain_report_none):
        assert chain_report_none.failed_gates == []
        assert all(m.printed for m in chain_report_none.measurements.values())

    def test_thin_gates_speed_up_timing(self, chain_report_none):
        # Shorter channels -> stronger drive -> earlier arrivals.
        assert chain_report_none.wns_post > chain_report_none.wns_drawn

    def test_thin_gates_leak(self, chain_report_none):
        assert chain_report_none.leakage_post > 1.3 * chain_report_none.leakage_drawn

    def test_runtimes_recorded(self, chain_report_none):
        assert set(chain_report_none.runtimes) == {
            "place", "sta_drawn", "tag_critical", "opc", "metrology",
            "back_annotate", "sta_post", "hold", "power",
        }

    def test_trace_records_every_stage(self, chain_report_none):
        trace = chain_report_none.trace
        assert [r.name for r in trace] == [
            "place", "sta_drawn", "tag_critical", "opc", "metrology",
            "back_annotate", "sta_post", "hold", "power",
        ]
        assert all(r.wall_s >= 0.0 for r in trace)
        assert trace.record_for("metrology").counters["gates_measured"] > 0

    def test_summary_text(self, chain_report_none):
        text = chain_report_none.summary()
        assert "WNS drawn" in text
        assert "leakage" in text


class TestFlowRuleOpc:
    def test_rule_opc_recovers_most_of_the_error(self, chain_flow, chain_report_none):
        report = chain_flow.run(FlowConfig(opc_mode="rule", clock_period_ps=400))
        # Rule OPC removes the bulk of the CD error but leaves residuals —
        # that gap is exactly what the paper's flow extracts.
        assert abs(report.cd_stats.mean) < abs(chain_report_none.cd_stats.mean) / 3
        assert abs(report.wns_change_percent) < abs(chain_report_none.wns_change_percent)


class TestCriticalTagging:
    def test_critical_gates_on_worst_paths(self, c17_flow):
        sta = c17_flow.engine.run()
        critical = c17_flow.tag_critical_gates(sta, 1)
        assert critical  # c17's worst path has gates
        assert all(name in c17_flow.netlist.gates for name in critical)

    def test_more_paths_tag_more_gates(self, c17_flow):
        sta = c17_flow.engine.run()
        one = c17_flow.tag_critical_gates(sta, 1)
        many = c17_flow.tag_critical_gates(sta, 4)
        assert one <= many


class TestSelectiveOpc:
    def test_selective_corrects_fewer_polygons(self, c17_flow):
        selective = FlowConfig(opc_mode="selective", clock_period_ps=500,
                               n_critical_paths=1)
        full = FlowConfig(opc_mode="model", clock_period_ps=500)
        sta = c17_flow.engine.run()
        critical = c17_flow.tag_critical_gates(sta, 1)
        _, n_selective = c17_flow.apply_opc(selective, critical)
        _, n_full = c17_flow.apply_opc(full, critical)
        assert 0 < n_selective < n_full

    def test_mask_polygon_count_preserved(self, c17_flow):
        config = FlowConfig(opc_mode="rule", clock_period_ps=500)
        mask, _ = c17_flow.apply_opc(config, set())
        assert len(mask) == len(c17_flow.owned_polygons)


class TestFlowRouting:
    def test_routed_wire_model_option(self, chain_flow, chain_report_none):
        routed = chain_flow.run(FlowConfig(opc_mode="none", clock_period_ps=400,
                                           use_routing=True))
        # Same design, realised wires: timing shifts but stays the same scale.
        assert routed.wns_drawn == pytest.approx(chain_report_none.wns_drawn,
                                                 rel=0.2)
        assert routed.wns_drawn != chain_report_none.wns_drawn
