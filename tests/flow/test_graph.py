"""Tests for the declarative stage graph: explicit requires()/provides()
edges, topological validation with the GraphValidationError taxonomy, and
the ready_set() frontier the async scheduler schedules from."""

import pytest

from repro.flow import (
    EXIT_VALIDATION,
    FlowConfig,
    FlowStage,
    GraphValidationError,
    InputValidationError,
    StageGraph,
    default_stage_graph,
)


def _stage(name, requires=(), provides=()):
    """A minimal config-independent stage for graph-shape tests."""

    # repro-lint: allow[stage-contract] synthetic graph-shape stage, never cached
    class _Stage(FlowStage):
        pass

    _Stage.name = name
    _Stage.requires = lambda self, config, _r=tuple(requires): _r
    _Stage.provides = lambda self, _p=tuple(provides): _p
    return _Stage()


class TestDefaultGraph:
    def test_validate_returns_topological_order(self):
        graph = default_stage_graph()
        config = FlowConfig()
        order = [s.name for s in graph.validate(config)]
        assert sorted(order) == sorted(s.name for s in graph.stages)
        # every stage appears strictly after all of its parents
        position = {name: i for i, name in enumerate(order)}
        for parent, child in graph.edges(config):
            assert position[parent] < position[child]

    def test_edges_depend_on_config(self):
        graph = default_stage_graph()
        rule = graph.edges(FlowConfig(opc_mode="rule"))
        selective = graph.edges(FlowConfig(opc_mode="selective"))
        assert ("tag_critical", "opc") not in rule
        assert ("tag_critical", "opc") in selective
        assert ("place", "sta_drawn") in rule

    def test_artifact_producers_unique_and_complete(self):
        producers = default_stage_graph().artifact_producers()
        assert producers["placement"] == "place"
        assert producers["drawn_sta"] == "sta_drawn"
        assert producers["mask_polygons"] == "opc"
        assert producers["measurements"] == "metrology"
        assert producers["derates"] == "back_annotate"

    def test_ready_set_frontier(self):
        graph = default_stage_graph()
        config = FlowConfig(opc_mode="rule")
        first = [s.name for s in graph.ready_set(config, set())]
        assert first == ["place"]
        second = [s.name for s in graph.ready_set(config, {"place"})]
        # opc only needs the placement in rule mode, so it is ready
        # alongside the drawn STA — the branch the scheduler overlaps.
        assert second == ["sta_drawn", "opc"]

    def test_ready_set_selective_gates_opc_on_tagging(self):
        graph = default_stage_graph()
        config = FlowConfig(opc_mode="selective")
        names = [s.name for s in graph.ready_set(config, {"place"})]
        assert "opc" not in names

    def test_stage_lookup(self):
        graph = default_stage_graph()
        assert graph.stage("opc").name == "opc"
        with pytest.raises(KeyError):
            graph.stage("nonexistent")


class TestValidationErrors:
    def test_missing_producer(self):
        graph = StageGraph([_stage("a"), _stage("b", requires=("ghost",))])
        with pytest.raises(GraphValidationError) as excinfo:
            graph.validate(FlowConfig())
        assert excinfo.value.kind == "missing-producer"
        assert "ghost" in str(excinfo.value)

    def test_duplicate_producer(self):
        graph = StageGraph([
            _stage("a", provides=("x",)),
            _stage("b", provides=("x",)),
        ])
        with pytest.raises(GraphValidationError) as excinfo:
            graph.validate(FlowConfig())
        assert excinfo.value.kind == "duplicate-producer"

    def test_cycle(self):
        graph = StageGraph([
            _stage("a", requires=("b",)),
            _stage("b", requires=("a",)),
            _stage("c"),
        ])
        with pytest.raises(GraphValidationError) as excinfo:
            graph.validate(FlowConfig())
        assert excinfo.value.kind == "cycle"
        # the stuck stages are named; the acyclic one is not
        assert "'a'" in str(excinfo.value) and "'b'" in str(excinfo.value)
        assert "'c'" not in str(excinfo.value)

    def test_taxonomy_placement(self):
        err = GraphValidationError("cycle", "boom")
        assert isinstance(err, InputValidationError)
        assert isinstance(err, ValueError)
        assert err.exit_code == EXIT_VALIDATION

    def test_duplicate_stage_name_rejected(self):
        with pytest.raises(ValueError):
            StageGraph([_stage("a"), _stage("a")])

    def test_nameless_stage_rejected(self):
        with pytest.raises(ValueError):
            StageGraph([_stage("")])
