"""Tests for the run journal and the graceful-interruption guard."""

import json
import os
import signal
import threading

import pytest

from repro.flow import (
    EXIT_INTERRUPTED,
    EXIT_QUARANTINE,
    EXIT_VALIDATION,
    FlowInterrupted,
    InputValidationError,
    InterruptGuard,
    QuarantineExceededError,
    RunJournal,
    StageError,
)


class TestJournalRoundTrip:
    def test_create_writes_manifest(self, tmp_path):
        journal = RunJournal.create(str(tmp_path / "run"),
                                    {"fingerprint": "abc", "config_hash": "def"})
        manifest = journal.manifest()
        assert manifest["fingerprint"] == "abc"
        assert manifest["config_hash"] == "def"
        assert manifest["run_id"]
        journal.close()

    def test_records_round_trip_in_order(self, tmp_path):
        journal = RunJournal.create(str(tmp_path), {"fingerprint": "f"})
        journal.append("stage", name="place", key="k1")
        journal.append("stage", name="opc", key="k2")
        journal.record_complete(wns_post=-12.5)
        journal.close()

        reread = RunJournal(str(tmp_path))
        types = [r["type"] for r in reread.records()]
        assert types == ["manifest", "stage", "stage", "complete"]
        assert reread.completed_stage_keys() == {"place": "k1", "opc": "k2"}

    def test_create_refuses_existing_journal(self, tmp_path):
        RunJournal.create(str(tmp_path), {"fingerprint": "f"}).close()
        with pytest.raises(InputValidationError, match="resume"):
            RunJournal.create(str(tmp_path), {"fingerprint": "f"})

    def test_torn_final_line_is_tolerated(self, tmp_path):
        journal = RunJournal.create(str(tmp_path), {"fingerprint": "f"})
        journal.append("stage", name="place", key="k1")
        journal.close()
        with open(journal.path, "a") as fh:
            fh.write('{"type": "stage", "name": "opc", "key"')  # killed mid-write
        reread = RunJournal(str(tmp_path))
        assert [r["type"] for r in reread.records()] == ["manifest", "stage"]
        assert reread.completed_stage_keys() == {"place": "k1"}

    def test_was_interrupted(self, tmp_path):
        journal = RunJournal.create(str(tmp_path), {"fingerprint": "f"})
        journal.record_interrupted("SIGINT", next_stage="metrology")
        assert journal.was_interrupted()
        journal.record_complete()
        assert not journal.was_interrupted()
        journal.close()

    def test_appends_are_fsynced_json_lines(self, tmp_path):
        journal = RunJournal.create(str(tmp_path), {"fingerprint": "f"})
        journal.append("stage", name="place", key="k")
        # Read through a *different* handle while the writer is open: the
        # line must already be on disk (durability against kill -9).
        lines = open(journal.path).read().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["name"] == "place"
        journal.close()


class TestListenerRegistrationRace:
    def test_add_listener_concurrent_with_append(self, tmp_path):
        """Subscribing from one thread while another appends must lose
        neither listeners nor notifications: both sides serialize their
        list access on the journal's write lock."""
        journal = RunJournal.create(str(tmp_path), {"fingerprint": "f"})
        calls = []
        barrier = threading.Barrier(2)
        errors = []

        def subscribe():
            barrier.wait()
            try:
                for _ in range(100):
                    journal.add_listener(
                        lambda rec: calls.append(rec["type"]))
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        def write():
            barrier.wait()
            try:
                for i in range(100):
                    journal.append("note", i=i)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=subscribe),
                   threading.Thread(target=write)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        # every registration survived the race: a quiescent append
        # notifies all 100 listeners exactly once
        calls.clear()
        journal.append("final")
        assert calls == ["final"] * 100
        journal.close()


class TestJournalResume:
    def test_resume_requires_existing_journal(self, tmp_path):
        with pytest.raises(InputValidationError, match="no journal"):
            RunJournal.resume(str(tmp_path / "nope"), {"fingerprint": "f"})

    def test_resume_appends_resumed_record(self, tmp_path):
        RunJournal.create(str(tmp_path), {"fingerprint": "f",
                                          "config_hash": "c"}).close()
        journal = RunJournal.resume(str(tmp_path), {"fingerprint": "f",
                                                    "config_hash": "c"})
        assert [r["type"] for r in journal.records()] == ["manifest", "resumed"]
        journal.close()

    def test_resume_rejects_fingerprint_mismatch(self, tmp_path):
        RunJournal.create(str(tmp_path), {"fingerprint": "f",
                                          "config_hash": "c"}).close()
        with pytest.raises(InputValidationError, match="fingerprint"):
            RunJournal.resume(str(tmp_path), {"fingerprint": "OTHER",
                                              "config_hash": "c"})

    def test_resume_rejects_config_mismatch(self, tmp_path):
        RunJournal.create(str(tmp_path), {"fingerprint": "f",
                                          "config_hash": "c"}).close()
        with pytest.raises(InputValidationError, match="config_hash"):
            RunJournal.resume(str(tmp_path), {"fingerprint": "f",
                                              "config_hash": "OTHER"})


class TestInterruptGuard:
    def test_checkpoint_noop_without_signal(self):
        with InterruptGuard() as guard:
            guard.checkpoint(next_stage="place")  # must not raise

    def test_first_signal_sets_flag_then_checkpoint_raises(self):
        with InterruptGuard() as guard:
            os.kill(os.getpid(), signal.SIGINT)
            assert guard.interrupted == "SIGINT"
            with pytest.raises(FlowInterrupted) as excinfo:
                guard.checkpoint(next_stage="metrology")
        assert excinfo.value.signal_name == "SIGINT"
        assert excinfo.value.next_stage == "metrology"
        assert excinfo.value.exit_code == EXIT_INTERRUPTED

    def test_second_signal_aborts_immediately(self):
        with InterruptGuard() as guard:
            os.kill(os.getpid(), signal.SIGINT)
            assert guard.interrupted == "SIGINT"
            with pytest.raises(KeyboardInterrupt):
                os.kill(os.getpid(), signal.SIGINT)

    def test_sigterm_is_graceful_too(self):
        with InterruptGuard() as guard:
            os.kill(os.getpid(), signal.SIGTERM)
            assert guard.interrupted == "SIGTERM"
            with pytest.raises(FlowInterrupted):
                guard.checkpoint()

    def test_handlers_restored_on_exit(self):
        before = (signal.getsignal(signal.SIGINT), signal.getsignal(signal.SIGTERM))
        with InterruptGuard():
            pass
        after = (signal.getsignal(signal.SIGINT), signal.getsignal(signal.SIGTERM))
        assert before == after


class TestErrorTaxonomy:
    def test_exit_codes(self):
        assert InputValidationError("x", "bad").exit_code == EXIT_VALIDATION
        assert FlowInterrupted("SIGINT").exit_code == EXIT_INTERRUPTED
        assert QuarantineExceededError(0.6, 0.5, ["g1"]).exit_code == EXIT_QUARANTINE

    def test_validation_error_is_value_error(self):
        assert isinstance(InputValidationError("f", "m"), ValueError)

    def test_validation_error_names_field(self):
        err = InputValidationError("n_critical_paths", "must be >= 1")
        assert err.field == "n_critical_paths"
        assert "n_critical_paths" in str(err)

    def test_stage_error_carries_stage_key_cause(self):
        cause = RuntimeError("boom")
        err = StageError("metrology", "abc123", cause)
        assert err.stage == "metrology"
        assert err.key == "abc123"
        assert err.cause is cause
        assert "metrology" in str(err) and "boom" in str(err)

    def test_quarantine_error_reports_fraction(self):
        err = QuarantineExceededError(0.75, 0.5, [f"g{i}" for i in range(12)])
        assert err.fraction == 0.75
        assert err.threshold == 0.5
        assert "75.0%" in str(err) and "..." in str(err)
