"""lcsan, the runtime lock sanitizer: detector units, the sanitized
FlowContext barrier-hammer, and a seeded chaos scenario — all asserting
zero lock-order inversions and zero held-across-await events, the
dynamic counterpart of the static concurrency rules."""

import asyncio
import threading

import pytest

import repro.flow.chaos as chaos_mod
import repro.flow.context as context_mod
import repro.flow.journal as journal_mod
import repro.flow.parallel as parallel_mod
from repro.cells import build_library
from repro.circuits import c17
from repro.flow import FaultPlan, FlowConfig, FlowContext, PostOpcTimingFlow
from repro.lintcheck import lcsan
from repro.pdk import make_tech_90nm

pytestmark = pytest.mark.timeout(120)

FAST = FlowConfig(opc_mode="rule", clock_period_ps=500)


@pytest.fixture(scope="module")
def tech():
    return make_tech_90nm()


@pytest.fixture(scope="module")
def lib(tech):
    return build_library(tech)


@pytest.fixture
def san():
    """Sanitizer wired into every flow module that creates locks; locks
    made while the fixture is live are SanitizedLock wrappers."""
    sanitizer = lcsan.LockSanitizer()
    restore = lcsan.instrument_modules(
        sanitizer, [context_mod, journal_mod, parallel_mod, chaos_mod])
    try:
        yield sanitizer
    finally:
        restore()


def _hammer(n_threads, target):
    """Run ``target(i)`` on n threads through a start barrier (the
    test_concurrency idiom)."""
    barrier = threading.Barrier(n_threads)
    errors = []

    def _run(i):
        barrier.wait()
        try:
            target(i)
        except BaseException as exc:  # noqa: BLE001 - surfaced to the test
            errors.append(exc)

    threads = [threading.Thread(target=_run, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return errors


def _fresh():
    sanitizer = lcsan.LockSanitizer()
    return sanitizer, lcsan.SanitizingThreading(sanitizer)


class TestDetectors:
    def test_inversion_detected_with_both_sites(self):
        san, proxy = _fresh()
        a = proxy.Lock()
        a.name = "A"
        b = proxy.Lock()
        b.name = "B"
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        [inv] = san.inversions()
        assert (inv.first, inv.second) == ("A", "B")
        assert "A -> B" in inv.describe() and "B -> A" in inv.describe()

    def test_consistent_order_is_clean(self):
        san, proxy = _fresh()
        a, b = proxy.Lock(), proxy.Lock()
        for _ in range(3):
            with a:
                with b:
                    pass
        assert san.inversions() == []
        assert len(san.order_edges) == 1

    def test_rlock_reentry_makes_no_edge(self):
        san, proxy = _fresh()
        r = proxy.RLock()
        with r:
            with r:
                pass
        assert san.order_edges == {}
        assert san.inversions() == []

    def test_locks_are_named_by_creation_site_by_default(self):
        _, proxy = _fresh()
        lock = proxy.Lock()
        assert "test_lcsan.py:" in lock.name

    def test_name_instance_locks(self):
        _, proxy = _fresh()

        class Box:
            def __init__(self):
                self._lock = proxy.Lock()

        box = Box()
        lcsan.name_instance_locks(box, "Box")
        assert box._lock.name == "Box._lock"

    def test_async_acquire_and_held_across_await(self):
        san, proxy = _fresh()
        lock = proxy.Lock()
        lock.name = "guard"

        async def main():
            gate = asyncio.Event()
            done = asyncio.Event()

            async def holder():
                lock.acquire()
                gate.set()
                await done.wait()  # yields while holding the lock
                lock.release()

            async def prober():
                await gate.wait()
                probe = proxy.Lock()
                probe.name = "probe"
                with probe:
                    pass
                done.set()

            await asyncio.gather(
                asyncio.ensure_future(holder()),
                asyncio.ensure_future(prober()),
            )

        asyncio.run(main())
        assert any("guard" in event for event in san.async_acquires)
        assert any("guard" in event for event in san.held_across_await)

    def test_plain_thread_use_records_no_async_events(self):
        san, proxy = _fresh()
        lock = proxy.Lock()
        with lock:
            pass
        assert san.async_acquires == []
        assert san.held_across_await == []

    def test_note_blocking_records_held_locks(self):
        san, proxy = _fresh()
        lock = proxy.Lock()
        lock.name = "journal._write_lock"
        san.note_blocking("os.fsync")  # nothing held: no event
        with lock:
            san.note_blocking("os.fsync")
        [event] = san.blocking_while_held
        assert "os.fsync" in event and "journal._write_lock" in event

    def test_reset_clears_reports(self):
        san, proxy = _fresh()
        a, b = proxy.Lock(), proxy.Lock()
        with a:
            with b:
                pass
        san.reset()
        assert san.order_edges == {} and san.inversions() == []


class TestInstrumentedFlow:
    def test_barrier_hammer_no_inversions(self, san):
        ctx = FlowContext()
        assert isinstance(ctx._lock, lcsan.SanitizedLock)
        lcsan.name_instance_locks(ctx, "FlowContext")

        def settle(i):
            ctx.settle("stage", f"k{i % 3}", lambda: i)

        assert _hammer(8, settle) == []
        assert ctx.consistency() == []
        assert san.inversions() == []
        assert san.held_across_await == []

    def test_disk_hammer_edges_match_static_model(self, san, tmp_path):
        ctx = FlowContext(cache_dir=str(tmp_path / "cache"))
        lcsan.name_instance_locks(ctx, "FlowContext")

        def settle(i):
            ctx.settle("stage", f"k{i % 4}", lambda: {"v": i})

        assert _hammer(8, settle) == []
        observed = {
            pair for pair in san.order_edges
            if pair[0].startswith("FlowContext.")
            and pair[1].startswith("FlowContext.")
        }
        # The static lock-order model derives exactly one FlowContext
        # edge (_disk_lock outer, _lock inner via _count); the runtime
        # must not witness an order the model does not know about.
        assert observed <= {("FlowContext._disk_lock", "FlowContext._lock")}
        assert san.inversions() == []
        assert san.held_across_await == []

    def test_seeded_chaos_disk_read_is_inversion_free(
            self, san, tech, lib, tmp_path):
        cache_dir = str(tmp_path / "cache")
        warm = FlowContext(cache_dir=cache_dir)
        PostOpcTimingFlow(c17(lib), tech, cells=lib, context=warm).run(FAST)

        plan, spec = FaultPlan.seeded(0)
        assert spec.site == "disk-read"
        ctx = FlowContext(cache_dir=cache_dir, fault_plan=plan)
        lcsan.name_instance_locks(ctx, "FlowContext")
        PostOpcTimingFlow(c17(lib), tech, cells=lib, context=ctx).run(FAST)

        assert plan.fired["disk-read"] == 1
        assert san.inversions() == []
        assert san.held_across_await == []
