"""Tests for the persistent (on-disk) tier of the FlowContext.

Covers cross-instance round-trips, integrity-checked loads (corrupt
entries recover by recomputing, never crash), LRU size-cap eviction, the
hardened ``stable_hash`` (address-bearing reprs are rejected), and a full
flow re-run served entirely from disk by a second, fresh context.
"""

import os
import time

import pytest

from repro.cells import build_library
from repro.circuits import inverter_chain
from repro.flow import FlowConfig, FlowContext, PostOpcTimingFlow, stable_hash
from repro.flow.context import MISSING
from repro.pdk import make_tech_90nm


@pytest.fixture(scope="module")
def tech():
    return make_tech_90nm()


@pytest.fixture(scope="module")
def lib(tech):
    return build_library(tech)


class TestStableHashHardening:
    def test_address_bearing_repr_rejected(self):
        class Plain:
            pass

        with pytest.raises(TypeError, match="address-bearing"):
            stable_hash(Plain())

    def test_nested_offender_rejected(self):
        with pytest.raises(TypeError):
            stable_hash(("fine", {"key": object()}))

    def test_lambda_rejected(self):
        with pytest.raises(TypeError):
            stable_hash(lambda x: x)

    def test_value_like_reprs_still_hash(self):
        class Point:
            def __init__(self, x):
                self.x = x

            def __repr__(self):
                return f"Point({self.x})"

        assert stable_hash(Point(1)) == stable_hash(Point(1))
        assert stable_hash(Point(1)) != stable_hash(Point(2))


class TestDiskRoundTrip:
    def test_cross_instance_round_trip(self, tmp_path):
        d = str(tmp_path)
        first = FlowContext(cache_dir=d)
        first.store("k1", {"mask": [1.5, 2.5], "n": 3})
        assert first.stats()["disk"]["writes"] == 1

        second = FlowContext(cache_dir=d)
        assert second.lookup("k1") == {"mask": [1.5, 2.5], "n": 3}
        assert second.last_hit_source == "disk"
        assert second.stats()["disk"]["hits"] == 1
        # Promoted into memory: the next lookup is a memory hit.
        second.lookup("k1")
        assert second.last_hit_source == "memory"

    def test_absent_key_is_plain_miss(self, tmp_path):
        ctx = FlowContext(cache_dir=str(tmp_path))
        assert ctx.lookup("nothere") is MISSING
        assert ctx.stats()["disk"]["misses"] == 1
        assert ctx.stats()["disk"]["corruptions"] == 0

    def test_contains_sees_disk(self, tmp_path):
        d = str(tmp_path)
        FlowContext(cache_dir=d).store("k1", 42)
        assert "k1" in FlowContext(cache_dir=d)

    def test_no_disk_without_cache_dir(self, tmp_path):
        ctx = FlowContext()
        ctx.store("k1", 42)
        assert ctx.stats()["disk"]["enabled"] is False
        assert ctx.stats()["disk"]["writes"] == 0


class TestCorruptionRecovery:
    def _seed(self, d):
        ctx = FlowContext(cache_dir=d)
        ctx.store("k1", list(range(100)))
        return ctx._data_path("k1"), ctx._hash_path("k1")

    def test_truncated_payload_recomputes(self, tmp_path):
        d = str(tmp_path)
        data_path, _ = self._seed(d)
        with open(data_path, "wb") as fh:
            fh.write(b"\x80truncated")
        ctx = FlowContext(cache_dir=d)
        calls = []
        value = ctx.memo("stage", "k1", lambda: calls.append(1) or "fresh")
        assert value == "fresh" and calls == [1]
        assert ctx.disk_corruptions == 1
        # The damaged files were dropped and the recompute re-persisted.
        assert FlowContext(cache_dir=d).lookup("k1") == "fresh"

    def test_missing_sidecar_is_corruption(self, tmp_path):
        d = str(tmp_path)
        data_path, hash_path = self._seed(d)
        os.remove(hash_path)
        ctx = FlowContext(cache_dir=d)
        assert ctx.lookup("k1") is MISSING
        assert ctx.disk_corruptions == 1
        assert not os.path.exists(data_path)

    def test_wrong_hash_is_corruption(self, tmp_path):
        d = str(tmp_path)
        _, hash_path = self._seed(d)
        with open(hash_path, "w") as fh:
            fh.write("0" * 64 + "\n")
        ctx = FlowContext(cache_dir=d)
        assert ctx.lookup("k1") is MISSING
        assert ctx.disk_corruptions == 1

    def test_unpicklable_value_counts_write_error(self, tmp_path):
        ctx = FlowContext(cache_dir=str(tmp_path))
        ctx.store("k1", lambda: None)  # lambdas don't pickle
        assert ctx.stats()["disk"]["write_errors"] == 1
        # Still served from memory within this context.
        assert ctx.lookup("k1") is not MISSING


class TestLruEviction:
    def test_oldest_entry_evicted(self, tmp_path):
        payload = list(range(200))
        ctx = FlowContext(cache_dir=str(tmp_path), max_disk_bytes=1100)
        for key in ("k1", "k2", "k3"):
            ctx.store(key, payload)
            time.sleep(0.02)
        assert ctx.disk_evictions >= 1
        fresh = FlowContext(cache_dir=str(tmp_path))
        assert fresh.lookup("k1") is MISSING  # oldest went first
        assert fresh.lookup("k3") is not MISSING  # newest always survives

    def test_disk_hit_refreshes_recency(self, tmp_path):
        d = str(tmp_path)
        payload = list(range(200))
        ctx = FlowContext(cache_dir=d, max_disk_bytes=1100)
        ctx.store("k1", payload)
        time.sleep(0.02)
        ctx.store("k2", payload)
        time.sleep(0.02)
        assert FlowContext(cache_dir=d).lookup("k1") is not MISSING  # touch k1
        time.sleep(0.02)
        ctx.store("k3", payload)  # forces one eviction: k2 is now LRU
        fresh = FlowContext(cache_dir=d)
        assert fresh.lookup("k1") is not MISSING
        assert fresh.lookup("k2") is MISSING


class TestPersistentFlow:
    def test_rerun_from_fresh_context_is_all_disk_hits(self, tech, lib, tmp_path):
        d = str(tmp_path / "cache")
        config = FlowConfig(opc_mode="none", clock_period_ps=400)
        first = PostOpcTimingFlow(inverter_chain(3), tech, cells=lib,
                                  context=FlowContext(cache_dir=d))
        ref = first.run(config)
        assert all(not r.cache_hit for r in ref.trace)

        second = PostOpcTimingFlow(inverter_chain(3), tech, cells=lib,
                                   context=FlowContext(cache_dir=d))
        got = second.run(config)
        assert all(r.cache_hit and r.cache_source == "disk" for r in got.trace)
        assert got.wns_post == ref.wns_post
        assert got.wns_drawn == ref.wns_drawn
        assert got.leakage_post == ref.leakage_post
        assert got.measurements == ref.measurements
        assert got.mask_polygons == ref.mask_polygons

    def test_empty_persistent_context_is_respected(self, tech, lib, tmp_path):
        """Regression: FlowContext has __len__, so an empty context is
        falsy — the flow must not silently swap in a fresh one."""
        ctx = FlowContext(cache_dir=str(tmp_path))
        flow = PostOpcTimingFlow(inverter_chain(2), tech, cells=lib, context=ctx)
        assert flow.context is ctx
