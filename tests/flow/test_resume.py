"""Interruption and resume: SIGINT mid-flow, hard kill via subprocess,
and the CLI exit-code contract.

The durability claim under test: an interrupted ``flow --run-dir D``
followed by ``flow --run-dir D --resume`` produces a report bit-identical
to an uninterrupted run, with every pre-interrupt stage served from the
journal + run-dir cache.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.cells import build_library
from repro.circuits import inverter_chain
from repro.flow import (
    FlowConfig,
    FlowContext,
    FlowInterrupted,
    InterruptGuard,
    PostOpcTimingFlow,
    RunJournal,
)
from repro.flow.stages import default_stage_graph
from repro.pdk import make_tech_90nm

SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(scope="module")
def tech():
    return make_tech_90nm()


@pytest.fixture(scope="module")
def lib(tech):
    return build_library(tech)


def _graph_signalling_after(stage_name, sig):
    """Default graph whose ``stage_name`` sends ``sig`` to this process
    right before returning — a signal arriving mid-stage."""
    graph = default_stage_graph()
    stage = next(s for s in graph.stages if s.name == stage_name)
    original = stage.run

    def run_then_signal(flow, config, artifacts, counters, context):
        outputs = original(flow, config, artifacts, counters, context)
        os.kill(os.getpid(), sig)
        return outputs

    stage.run = run_then_signal
    return graph


class TestSigintMidFlow:
    def test_interrupt_settles_stage_then_resume_is_bit_identical(
        self, tech, lib, tmp_path
    ):
        run_dir = str(tmp_path / "run")
        cache = os.path.join(run_dir, RunJournal.CACHE_SUBDIR)
        config = FlowConfig(opc_mode="rule", clock_period_ps=400)

        # Reference: uninterrupted run with its own fresh context.
        reference = PostOpcTimingFlow(
            inverter_chain(3), tech, cells=lib, context=FlowContext()
        ).run(config)

        # Interrupted run: SIGINT lands while the opc stage is in flight.
        flow = PostOpcTimingFlow(
            inverter_chain(3), tech, cells=lib,
            context=FlowContext(cache_dir=cache),
            graph=_graph_signalling_after("opc", signal.SIGINT),
        )
        journal = RunJournal.create(run_dir, {"fingerprint": flow.fingerprint,
                                              "config_hash": "c"})
        with InterruptGuard() as guard:
            with pytest.raises(FlowInterrupted) as excinfo:
                flow.run(config, journal=journal, interrupt=guard)
        journal.close()

        # The in-flight stage settled (cached + journaled); the next did not run.
        assert excinfo.value.next_stage == "metrology"
        journaled = [r["name"] for r in journal.stage_records()]
        assert journaled == ["place", "sta_drawn", "tag_critical", "opc"]
        assert journal.was_interrupted()

        # Resume: fresh flow + context over the same run dir.
        flow2 = PostOpcTimingFlow(
            inverter_chain(3), tech, cells=lib,
            context=FlowContext(cache_dir=cache),
        )
        journal2 = RunJournal.resume(run_dir, {"fingerprint": flow2.fingerprint,
                                               "config_hash": "c"})
        report = flow2.run(config, journal=journal2)
        journal2.close()

        by_name = {r.name: r for r in report.trace}
        for name in journaled:
            assert by_name[name].cache_hit, f"{name} recomputed on resume"
            assert by_name[name].cache_source == "disk"

        assert report.wns_drawn == reference.wns_drawn
        assert report.wns_post == reference.wns_post
        assert report.measurements == reference.measurements
        assert report.mask_polygons == reference.mask_polygons
        assert report.leakage_post == reference.leakage_post
        assert report.hold_post == reference.hold_post
        assert report.summary() == reference.summary()

    def test_interrupted_journal_refuses_plain_rerun(self, tech, lib, tmp_path):
        run_dir = str(tmp_path / "run")
        RunJournal.create(run_dir, {"fingerprint": "f"}).close()
        with pytest.raises(ValueError, match="--resume"):
            RunJournal.create(run_dir, {"fingerprint": "f"})


def _cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _last_complete(run_dir):
    records = [json.loads(line)
               for line in open(os.path.join(run_dir, "journal.jsonl"))]
    done = [r for r in records if r["type"] == "complete"]
    assert done, f"no complete record in {run_dir}"
    return done[-1]


class TestHardKillSubprocess:
    def test_sigkill_then_cli_resume_matches_uninterrupted_run(self, tmp_path):
        ref_dir = str(tmp_path / "ref")
        int_dir = str(tmp_path / "int")
        base = [sys.executable, "-m", "repro", "flow", "--design", "c17",
                "--opc", "rule", "--period", "800"]
        env = _cli_env()

        subprocess.run(base + ["--run-dir", ref_dir], env=env, check=True,
                       stdout=subprocess.DEVNULL, timeout=600)

        proc = subprocess.Popen(base + ["--run-dir", int_dir], env=env,
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        journal_path = os.path.join(int_dir, "journal.jsonl")
        deadline = time.time() + 300
        while time.time() < deadline and proc.poll() is None:
            if os.path.exists(journal_path) and any(
                '"stage"' in line for line in open(journal_path)
            ):
                break
            time.sleep(0.02)
        killed = proc.poll() is None
        if killed:
            proc.kill()  # SIGKILL: no handler, no flush, no goodbye
        proc.wait(timeout=600)

        pre_kill = [json.loads(line)["name"] for line in open(journal_path)
                    if '"stage"' in line]
        assert pre_kill, "journal never recorded a stage"

        result = subprocess.run(base + ["--run-dir", int_dir, "--resume"],
                                env=env, check=True, timeout=600,
                                stdout=subprocess.PIPE, text=True)
        assert "journal:" in result.stdout

        resumed = [json.loads(line) for line in open(journal_path)]
        resumed_stages = [r for r in resumed if r["type"] == "stage"]
        # Every stage journaled before the kill is served from cache after it.
        replayed = {r["name"]: r for r in resumed_stages[len(pre_kill):]}
        for name in pre_kill:
            assert replayed[name]["cache_hit"], f"{name} recomputed after kill"

        ref, got = _last_complete(ref_dir), _last_complete(int_dir)
        assert got["wns_drawn"] == ref["wns_drawn"]
        assert got["wns_post"] == ref["wns_post"]
        assert got["coverage"] == ref["coverage"]


class TestCliExitCodes:
    def test_interrupt_exits_2_and_journals(self, tmp_path, monkeypatch, capsys):
        original_enter = InterruptGuard.__enter__

        def enter_already_interrupted(self):
            original_enter(self)
            self.interrupted = "SIGINT"
            return self

        monkeypatch.setattr(InterruptGuard, "__enter__", enter_already_interrupted)
        run_dir = str(tmp_path / "run")
        code = main(["flow", "--design", "c17", "--opc", "none",
                     "--period", "500", "--run-dir", run_dir])
        assert code == 2
        assert "interrupted" in capsys.readouterr().err
        journal = RunJournal(run_dir)
        assert journal.was_interrupted()

    def test_resume_without_run_dir_exits_3(self, capsys):
        code = main(["flow", "--design", "c17", "--opc", "none",
                     "--period", "500", "--resume"])
        assert code == 3
        assert "--resume requires --run-dir" in capsys.readouterr().err

    def test_quarantine_exceeded_exits_4(self, tmp_path, monkeypatch, capsys):
        from repro.metrology.gate_cd import measure_tile_chunk as real_chunk

        def poison_everything(payload):
            results = real_chunk(payload)
            for measured in results:
                for measurement in measured.values():
                    if measurement.slice_cds:
                        measurement.slice_cds[0] = float("nan")
            return results

        monkeypatch.setattr("repro.flow.stages.measure_tile_chunk",
                            poison_everything)
        run_dir = str(tmp_path / "run")
        code = main(["flow", "--design", "c17", "--opc", "none",
                     "--period", "500", "--run-dir", run_dir,
                     "--max-quarantine-fraction", "0.25"])
        assert code == 4
        assert "quarantined fraction" in capsys.readouterr().err
        records = RunJournal(run_dir).records()
        assert records[-1]["type"] == "failed"
        assert "QuarantineExceededError" in records[-1]["error"]
