"""Tests for preflight validation, per-gate quarantine with degraded
coverage, StageError wrapping, and partial-failure-safe sweeps."""

import math

import pytest

from repro.cells import build_library
from repro.circuits import Netlist, inverter_chain
from repro.flow import (
    FlowConfig,
    FlowContext,
    FlowSweep,
    InputValidationError,
    PostOpcTimingFlow,
    QuarantineExceededError,
    StageError,
)
from repro.geometry import Rect
from repro.metrology.gate_cd import (
    GateCdMeasurement,
    measurement_fault,
    quarantine_measurements,
)
from repro.pdk import make_tech_90nm
from repro.timing import quarantine_derates
from repro.timing.sta import InstanceDerate


@pytest.fixture(scope="module")
def tech():
    return make_tech_90nm()


@pytest.fixture(scope="module")
def lib(tech):
    return build_library(tech)


def _measurement(drawn=80.0, cds=(78.0, 79.0, 80.0)):
    return GateCdMeasurement(
        gate_rect=Rect(0, 0, drawn, 400),
        drawn_cd=drawn,
        slice_positions=list(range(len(cds))),
        slice_cds=list(cds),
    )


class TestMeasurementFault:
    def test_sound_measurement_passes(self):
        assert measurement_fault(_measurement()) is None

    def test_no_slices_is_fault(self):
        assert "slices" in measurement_fault(_measurement(cds=()))

    def test_non_finite_cd_is_fault(self):
        assert "non-finite" in measurement_fault(
            _measurement(cds=(78.0, float("nan"), 80.0)))
        assert "non-finite" in measurement_fault(
            _measurement(cds=(78.0, float("inf"), 80.0)))

    def test_negative_cd_is_fault(self):
        assert "negative" in measurement_fault(_measurement(cds=(78.0, -5.0)))

    def test_out_of_band_cd_is_fault(self):
        assert "outside" in measurement_fault(_measurement(cds=(900.0, 910.0)))
        assert "outside" in measurement_fault(_measurement(cds=(5.0, 6.0)))

    def test_catastrophic_open_is_not_quarantined(self):
        # CD 0.0 is real data: the printability-failure path owns it.
        assert measurement_fault(_measurement(cds=(0.0, 0.0, 0.0))) is None
        assert measurement_fault(_measurement(cds=(0.0, 78.0, 80.0))) is None

    def test_quarantine_split(self):
        measurements = {
            ("g1", "m0"): _measurement(),
            ("g2", "m0"): _measurement(cds=(float("nan"),)),
        }
        clean, faults = quarantine_measurements(measurements)
        assert set(clean) == {("g1", "m0")}
        assert set(faults) == {("g2", "m0")}


class TestQuarantineDerates:
    def test_physical_derates_pass(self):
        clean, faults = quarantine_derates({"g1": InstanceDerate(1.1, 0.9, 1.05)})
        assert set(clean) == {"g1"} and not faults

    def test_non_finite_scale_quarantined(self):
        derates = {
            "g1": InstanceDerate(float("nan"), 1.0, 1.0),
            "g2": InstanceDerate(1.0, float("inf"), 1.0),
            "g3": InstanceDerate(1.0, 1.0, 0.0),
            "ok": InstanceDerate(1.0, 1.0, 1.0),
        }
        clean, faults = quarantine_derates(derates)
        assert set(clean) == {"ok"}
        assert set(faults) == {"g1", "g2", "g3"}
        assert all("non-physical" in why for why in faults.values())


class TestPreflight:
    def test_empty_netlist_rejected(self, tech, lib):
        empty = Netlist(name="void")
        flow = PostOpcTimingFlow(empty, tech, cells=lib)
        with pytest.raises(InputValidationError, match="netlist"):
            flow.run(FlowConfig(opc_mode="none", clock_period_ps=400))

    def test_non_positive_tile_size_rejected(self, tech, lib):
        flow = PostOpcTimingFlow(inverter_chain(2), tech, cells=lib)
        flow.simulator.max_tile_px = 0
        try:
            with pytest.raises(InputValidationError, match="max_tile_px"):
                flow.run(FlowConfig(opc_mode="none", clock_period_ps=400))
        finally:
            flow.simulator.max_tile_px = 512

    def test_bad_config_fields_named(self):
        with pytest.raises(InputValidationError, match="opc_mode"):
            FlowConfig(opc_mode="psm")
        with pytest.raises(InputValidationError, match="clock_period_ps"):
            FlowConfig(clock_period_ps=-1)
        with pytest.raises(InputValidationError, match="n_critical_paths"):
            FlowConfig(n_critical_paths=0)
        with pytest.raises(InputValidationError, match="n_slices"):
            FlowConfig(n_slices=0)
        with pytest.raises(InputValidationError, match="max_quarantine_fraction"):
            FlowConfig(max_quarantine_fraction=1.5)


def _poison_metrology(monkeypatch, poisoned_gates):
    """Make the metrology worker return NaN CDs for the given gates."""
    from repro.metrology.gate_cd import measure_tile_chunk as real_chunk

    def poisoned(payload):
        results = real_chunk(payload)
        for measured in results:
            for key, measurement in measured.items():
                if key[0] in poisoned_gates and measurement.slice_cds:
                    measurement.slice_cds[0] = float("nan")
        return results

    monkeypatch.setattr("repro.flow.stages.measure_tile_chunk", poisoned)


class TestFlowQuarantine:
    def test_bad_gate_degrades_coverage_not_run(self, tech, lib, monkeypatch):
        _poison_metrology(monkeypatch, {"inv0"})
        flow = PostOpcTimingFlow(inverter_chain(3), tech, cells=lib,
                                 context=FlowContext())
        report = flow.run(FlowConfig(opc_mode="none", clock_period_ps=400))
        assert report.quarantined_gates == ["inv0"]
        assert "non-finite" in report.quarantine_reasons["inv0"]
        assert report.coverage == pytest.approx(2 / 3)
        assert all(key[0] != "inv0" for key in report.measurements)
        assert math.isfinite(report.wns_post)
        assert report.trace.quarantined_gates >= 1
        assert "coverage" in report.summary()

    def test_threshold_exceeded_raises(self, tech, lib, monkeypatch):
        _poison_metrology(monkeypatch, {"inv0", "inv1"})
        flow = PostOpcTimingFlow(inverter_chain(3), tech, cells=lib,
                                 context=FlowContext())
        with pytest.raises(QuarantineExceededError) as excinfo:
            flow.run(FlowConfig(opc_mode="none", clock_period_ps=400,
                                max_quarantine_fraction=0.5))
        assert excinfo.value.fraction == pytest.approx(2 / 3)
        assert excinfo.value.quarantined == ["inv0", "inv1"]

    def test_threshold_at_one_never_raises(self, tech, lib, monkeypatch):
        _poison_metrology(monkeypatch, {"inv0", "inv1"})
        flow = PostOpcTimingFlow(inverter_chain(3), tech, cells=lib,
                                 context=FlowContext())
        report = flow.run(FlowConfig(opc_mode="none", clock_period_ps=400,
                                     max_quarantine_fraction=1.0))
        assert len(report.quarantined_gates) == 2
        assert report.coverage == pytest.approx(1 / 3)

    def test_clean_run_has_full_coverage(self, tech, lib):
        flow = PostOpcTimingFlow(inverter_chain(2), tech, cells=lib)
        report = flow.run(FlowConfig(opc_mode="none", clock_period_ps=400))
        assert report.coverage == 1.0
        assert report.quarantined_gates == []
        assert report.trace.quarantined_gates == 0

    def test_markdown_report_carries_coverage(self, tech, lib, monkeypatch):
        from repro.analysis.flow_report import flow_report_markdown

        _poison_metrology(monkeypatch, {"inv0"})
        flow = PostOpcTimingFlow(inverter_chain(3), tech, cells=lib,
                                 context=FlowContext())
        report = flow.run(FlowConfig(opc_mode="none", clock_period_ps=400))
        text = flow_report_markdown(report)
        assert "Extraction coverage" in text
        assert "`inv0`" in text


class TestStageErrorWrapping:
    def test_failing_stage_wrapped_with_stage_and_key(self, tech, lib, monkeypatch):
        def explode(payload):
            raise RuntimeError("cosmic ray")

        monkeypatch.setattr("repro.flow.stages.measure_tile_chunk", explode)
        flow = PostOpcTimingFlow(inverter_chain(2), tech, cells=lib,
                                 context=FlowContext())
        with pytest.raises(StageError) as excinfo:
            flow.run(FlowConfig(opc_mode="none", clock_period_ps=400))
        assert excinfo.value.stage == "metrology"
        assert excinfo.value.key
        assert isinstance(excinfo.value.cause, RuntimeError)
        assert isinstance(excinfo.value.__cause__, RuntimeError)


class _OneModeFails:
    """Stand-in flow: raises for one mode, returns a sentinel otherwise."""

    def __init__(self, failing_mode):
        self.failing_mode = failing_mode
        self.context = FlowContext()
        self.ran = []

    def run(self, config, journal=None, interrupt=None):
        self.ran.append(config.opc_mode)
        if config.opc_mode == self.failing_mode:
            raise RuntimeError(f"{config.opc_mode} exploded")
        return f"report-{config.opc_mode}"


class TestSweepPartialFailure:
    def test_raising_mode_keeps_completed_reports(self):
        flow = _OneModeFails("model")
        result = FlowSweep(flow, modes=("none", "rule", "model", "selective")).run()
        assert flow.ran == ["none", "rule", "model", "selective"]
        assert set(result.reports) == {"none", "rule", "selective"}
        assert set(result.failures) == {"model"}
        assert "exploded" in result.failures["model"]

    def test_real_sweep_survives_quarantine_failure(self, tech, lib, monkeypatch):
        # Poison every gate: each mode trips the quarantine threshold, but
        # the sweep still returns (with every failure captured) instead of
        # discarding completed work.
        _poison_metrology(monkeypatch, {"inv0", "inv1"})
        flow = PostOpcTimingFlow(inverter_chain(2), tech, cells=lib,
                                 context=FlowContext())
        result = FlowSweep(flow, modes=("none", "rule")).run(
            FlowConfig(opc_mode="none", clock_period_ps=400,
                       max_quarantine_fraction=0.1))
        assert result.reports == {}
        assert set(result.failures) == {"none", "rule"}
        assert all("QuarantineExceededError" in f for f in result.failures.values())

    def test_table_renders_survivors_plus_failure_footer(self, tech, lib):
        flow = PostOpcTimingFlow(inverter_chain(2), tech, cells=lib,
                                 context=FlowContext())
        result = FlowSweep(flow, modes=("none",)).run(
            FlowConfig(opc_mode="none", clock_period_ps=400))
        result.failures["model"] = "RuntimeError: boom"
        text = result.table()
        assert "none" in text
        assert "failed modes (1):" in text
        assert "model: RuntimeError: boom" in text

    def test_clean_sweep_has_no_failures(self, tech, lib):
        flow = PostOpcTimingFlow(inverter_chain(2), tech, cells=lib,
                                 context=FlowContext())
        result = FlowSweep(flow, modes=("none", "rule")).run(
            FlowConfig(opc_mode="none", clock_period_ps=400))
        assert result.failures == {}
        assert "failed modes" not in result.table()
