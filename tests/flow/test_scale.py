"""Scale path through the flow: sharded metrology + incremental STA.

The fast tests pin the wiring on a small design: the incremental
``sta_post`` default is bit-identical to a full re-run, sharded metrology
feeds the same back-annotation contract, and the shard count participates
in the stage cache key (shard windows measure slightly different CDs than
512-pixel tiles, so the two must never share cache entries).

The ``slow``-marked class is the CI ``scale-smoke`` job: a 1k-gate
structured-ASIC vehicle end-to-end with ``litho_shards``, the cached
rerun, and serial-vs-process dispatch identity of the shard plan.
"""

import pytest

from repro.cells import build_library
from repro.circuits import c17, structured_asic
from repro.flow import FlowConfig, ParallelExecutor, PostOpcTimingFlow
from repro.metrology import plan_metrology_shards
from repro.metrology.gate_cd import measure_tile_chunk
from repro.pdk import make_tech_90nm


@pytest.fixture(scope="module")
def tech():
    return make_tech_90nm()


@pytest.fixture(scope="module")
def lib(tech):
    return build_library(tech)


def _sta_equal(a, b):
    assert a.arrivals == b.arrivals
    assert a.slews == b.slews
    ea = sorted((e.net, e.transition, e.arrival, e.required) for e in a.endpoints)
    eb = sorted((e.net, e.transition, e.arrival, e.required) for e in b.endpoints)
    assert ea == eb


def _stage_record(report, name):
    records = [r for r in report.trace if r.name == name]
    assert records, f"no {name} record in trace"
    return records[-1]


class TestShardedFlowFast:
    @pytest.fixture(scope="class")
    def flow(self, tech, lib):
        return PostOpcTimingFlow(c17(lib), tech, cells=lib)

    def test_incremental_default_bit_identical(self, flow):
        full = flow.run(FlowConfig(opc_mode="rule", incremental_sta=False))
        inc = flow.run(FlowConfig(opc_mode="rule", incremental_sta=True))
        _sta_equal(full.post_sta, inc.post_sta)
        assert full.wns_post == inc.wns_post
        record = _stage_record(inc, "sta_post")
        assert record.counters.get("retimed_instances", 0) > 0

    def test_incremental_is_the_default(self):
        assert FlowConfig().incremental_sta is True

    def test_sharded_metrology_end_to_end(self, flow):
        report = flow.run(FlowConfig(opc_mode="rule", litho_shards=2))
        assert report.coverage == 1.0
        record = _stage_record(report, "metrology")
        assert record.counters.get("litho_shards", 0) >= 1
        # same gates measured as the tile path
        tile = flow.run(FlowConfig(opc_mode="rule", litho_shards=0))
        assert set(report.measurements) == set(tile.measurements)

    def test_shard_count_is_a_cache_key(self, flow):
        config = FlowConfig(opc_mode="rule", litho_shards=2)
        flow.run(config)
        replay = flow.run(config)
        assert _stage_record(replay, "metrology").cache_hit
        other = flow.run(FlowConfig(opc_mode="rule", litho_shards=3))
        # a different shard count must recompute, not reuse
        assert not _stage_record(other, "metrology").cache_hit

    def test_negative_shards_rejected(self):
        from repro.flow import InputValidationError

        with pytest.raises(InputValidationError):
            FlowConfig(litho_shards=-1)


@pytest.mark.slow
@pytest.mark.timeout(3600)
class TestScaleSmoke1k:
    """The CI scale-smoke vehicle: 1k gates, sharded litho, e2e."""

    VEHICLE = 1000
    SHARDS = 4

    @pytest.fixture(scope="class")
    def flow_and_report(self, tech, lib):
        netlist = structured_asic(self.VEHICLE)
        flow = PostOpcTimingFlow(netlist, tech, cells=lib)
        config = FlowConfig(opc_mode="rule", litho_shards=self.SHARDS)
        report = flow.run(config)
        return flow, config, report

    def test_e2e_completes_with_full_coverage(self, flow_and_report):
        _, _, report = flow_and_report
        assert report.coverage >= 0.95
        assert report.wns_post == report.wns_post  # not NaN
        record = _stage_record(report, "metrology")
        assert record.counters.get("litho_shards", 0) >= self.SHARDS
        assert record.counters["gates_measured"] > 0

    def test_incremental_sta_post_was_used(self, flow_and_report):
        _, _, report = flow_and_report
        record = _stage_record(report, "sta_post")
        assert record.counters.get("retimed_instances", 0) > 0

    def test_cached_rerun_hits_90_percent(self, flow_and_report):
        flow, config, report = flow_and_report
        replay = flow.run(config)
        hits = replay.trace.cache_hits
        assert hits / len(replay.trace) >= 0.9
        _sta_equal(report.post_sta, replay.post_sta)

    def test_shard_dispatch_serial_vs_process_identical(self, flow_and_report,
                                                        tech, lib):
        """The same 1k shard plan through serial and 2-process dispatch."""
        from repro.pdk import Layers
        from repro.place import assemble_layout, instance_gate_rects, place_rows
        from repro.place.assembler import TOP_CELL

        flow, _, _ = flow_and_report
        netlist = structured_asic(self.VEHICLE)
        placement = place_rows(netlist, lib)
        layout = assemble_layout(netlist, lib, placement)
        polys = layout.flat_polygons(TOP_CELL, Layers.POLY)
        rects = instance_gate_rects(netlist, lib, placement)
        tasks = plan_metrology_shards(flow.simulator, polys, rects,
                                      shards=self.SHARDS)
        serial = {k: m for chunk in measure_tile_chunk((flow.simulator, tasks))
                  for k, m in chunk.items()}
        executor = ParallelExecutor.from_jobs(2)
        chunks = executor.map_chunks(measure_tile_chunk, flow.simulator, tasks)
        parallel = {k: m for chunk in chunks for k, m in chunk.items()}
        assert set(serial) == set(parallel)
        for key in serial:
            assert serial[key].slice_cds == parallel[key].slice_cds
            assert serial[key].slice_positions == parallel[key].slice_positions
