"""Tests for the async stage-level DAG scheduler.

Scheduler semantics run against a lightweight synthetic flow (launch
order, failure determinism, interruption, input narrowing); bit-identical
parity against the serial path runs on the real c17 flow; and the
concurrent sweep is checked against the serial sweep's exact sharing
accounting plus the overlap criterion (>= 2 stages in flight at once,
proven from the recorded execution windows).
"""

import asyncio
import time

import pytest

from repro.cells import build_library
from repro.circuits import c17
from repro.flow import (
    FlowConfig,
    FlowContext,
    FlowStage,
    FlowSweep,
    FlowTrace,
    PostOpcTimingFlow,
    StageError,
    StageGraph,
    StageScheduler,
)
from repro.flow.errors import FlowInterrupted
from repro.flow.journal import InterruptGuard
from repro.pdk import make_tech_90nm
from tests.flow.test_stages import small_tile_simulator


@pytest.fixture(scope="module")
def tech():
    return make_tech_90nm()


@pytest.fixture(scope="module")
def lib(tech):
    return build_library(tech)


# -- synthetic flow -----------------------------------------------------------


class _FakeFlow:
    """Just enough surface for stage_key/settle_stage: a fingerprint and
    a graph.  Stages carry their own behavior."""

    def __init__(self, stages):
        self.fingerprint = "fake-flow"
        self.graph = StageGraph(stages)


def _make_stage(name, requires=(), provides=None, body=None, sleep=0.0):
    provides = (name,) if provides is None else tuple(provides)

    # repro-lint: allow[stage-contract] synthetic scheduler-test stage
    class _Stage(FlowStage):
        pass

    def run(self, flow, config, artifacts, counters, context):
        if sleep:
            time.sleep(sleep)
        if body is not None:
            return body(artifacts)
        return {name: sum(artifacts.values()) + 1 if artifacts else 1}

    _Stage.name = name
    _Stage.requires = lambda self, config, _r=tuple(requires): _r
    _Stage.provides = lambda self, _p=provides: _p
    _Stage.run = run
    return _Stage()


def _execute(flow, **kwargs):
    # explicit None checks: an empty FlowContext/FlowTrace is falsy
    scheduler = kwargs.pop("scheduler", None)
    scheduler = StageScheduler() if scheduler is None else scheduler
    context = kwargs.pop("context", None)
    context = FlowContext() if context is None else context
    trace = kwargs.pop("trace", None)
    trace = FlowTrace() if trace is None else trace
    artifacts = asyncio.run(scheduler.execute(
        flow, FlowConfig(), context, trace, **kwargs
    ))
    return artifacts, context, trace


class TestSchedulerSemantics:
    def test_diamond_runs_and_merges(self):
        flow = _FakeFlow([
            _make_stage("a"),
            _make_stage("b", requires=("a",)),
            _make_stage("c", requires=("a",)),
            _make_stage("d", requires=("b", "c")),
        ])
        artifacts, context, trace = _execute(flow)
        assert artifacts == {"a": 1, "b": 2, "c": 2, "d": 5}
        assert len(trace) == 4
        assert trace.annotations["cache_consistent"] is True
        assert context.consistency() == []

    def test_independent_branches_overlap(self):
        flow = _FakeFlow([
            _make_stage("a"),
            _make_stage("b", requires=("a",), sleep=0.15),
            _make_stage("c", requires=("a",), sleep=0.15),
        ])
        _artifacts, _context, trace = _execute(flow)
        # the sleeping branches must have been in flight together
        assert trace.concurrent_stages >= 2

    def test_max_concurrent_stages_caps_overlap(self):
        flow = _FakeFlow([
            _make_stage("a"),
            _make_stage("b", requires=("a",), sleep=0.1),
            _make_stage("c", requires=("a",), sleep=0.1),
            _make_stage("d", requires=("a",), sleep=0.1),
        ])
        _artifacts, _context, trace = _execute(
            flow, scheduler=StageScheduler(max_concurrent_stages=1)
        )
        assert trace.concurrent_stages == 1

    def test_bad_cap_rejected(self):
        with pytest.raises(ValueError):
            StageScheduler(max_concurrent_stages=0)

    def test_stage_exception_wrapped_and_first_in_topo_order_wins(self):
        def fail_fast(artifacts):
            raise RuntimeError("late stage, fails immediately")

        def fail_slow(artifacts):
            time.sleep(0.2)
            raise RuntimeError("early stage, fails last")

        flow = _FakeFlow([
            _make_stage("a"),
            # declared (and therefore topologically) earlier, finishes later
            _make_stage("early", requires=("a",), body=fail_slow),
            _make_stage("late", requires=("a",), body=fail_fast),
        ])
        with pytest.raises(StageError) as excinfo:
            _execute(flow)
        # deterministic: the failure earliest in topological order is
        # raised even though the later stage failed first in wall time
        assert excinfo.value.stage == "early"

    def test_failure_settles_siblings_and_stops_launching(self):
        settled = []

        def ok(artifacts):
            time.sleep(0.1)
            settled.append("sibling")
            return {"ok_out": 1}

        def fail(artifacts):
            raise RuntimeError("boom")

        flow = _FakeFlow([
            _make_stage("a"),
            _make_stage("bad", requires=("a",), body=fail),
            _make_stage("sibling", requires=("a",), provides=("ok_out",),
                        body=ok),
            _make_stage("never", requires=("sibling", "bad")),
        ])
        context = FlowContext()
        with pytest.raises(StageError):
            _execute(flow, context=context)
        # the in-flight sibling settled (and cached) before unwinding;
        # the downstream stage never launched
        assert settled == ["sibling"]
        assert "never" not in context.misses

    def test_interrupt_lets_in_flight_settle_then_raises(self):
        guard = InterruptGuard()

        def stop_then_finish(artifacts):
            guard.interrupted = "SIGINT"  # as the signal handler would
            time.sleep(0.05)
            return {"b": 2}

        flow = _FakeFlow([
            _make_stage("a"),
            _make_stage("b", requires=("a",), body=stop_then_finish),
            _make_stage("c", requires=("b",)),
        ])
        context = FlowContext()
        with pytest.raises(FlowInterrupted) as excinfo:
            _execute(flow, context=context, interrupt=guard)
        # the in-flight stage settled and was cached; the pending stage
        # is named so resume knows where it stopped
        assert context.misses["b"] == 1
        assert excinfo.value.next_stage == "c"
        assert "c" not in context.misses

    def test_inputs_narrowed_to_declared_parents(self):
        seen = {}

        def record(artifacts):
            seen.update(artifacts)
            return {"c": 3}

        flow = _FakeFlow([
            _make_stage("a"),
            _make_stage("b", requires=("a",)),
            # c declares only b: it must not see a's artifact even though
            # the scheduler already holds it
            _make_stage("c", requires=("b",), body=record),
        ])
        _execute(flow)
        assert set(seen) == {"b"}


class TestSerialAsyncParity:
    @pytest.fixture(scope="class")
    def reports(self, tech, lib):
        config = FlowConfig(opc_mode="selective", clock_period_ps=500,
                            n_critical_paths=2)
        out = {}
        for label, kwargs in {
            "serial": {},
            "async": dict(scheduler=StageScheduler()),
        }.items():
            flow = PostOpcTimingFlow(c17(lib), tech, cells=lib,
                                     simulator=small_tile_simulator(tech))
            out[label] = flow.run(config, **kwargs)
        return out

    def test_bit_identical(self, reports):
        ref, got = reports["serial"], reports["async"]
        assert got.wns_post == ref.wns_post
        assert got.wns_drawn == ref.wns_drawn
        assert got.leakage_post == ref.leakage_post
        assert got.leakage_drawn == ref.leakage_drawn
        assert got.mask_polygons == ref.mask_polygons
        assert got.measurements.keys() == ref.measurements.keys()
        for name, m in ref.measurements.items():
            assert got.measurements[name].slice_cds == m.slice_cds

    def test_same_stages_settled(self, reports):
        ref, got = reports["serial"], reports["async"]
        assert {r.name for r in got.trace} == {r.name for r in ref.trace}
        assert got.trace.cache_misses == ref.trace.cache_misses

    def test_trace_carries_scheduler_telemetry(self, reports):
        trace = reports["async"].trace
        assert trace.annotations["cache_consistent"] is True
        payload = trace.as_dict()
        assert payload["cache_consistent"] is True
        assert "deduped" in payload and "concurrent_stages" in payload
        # every record carries a real execution window
        assert all(r.t_end > r.t_start for r in trace)


class TestConcurrentSweep:
    @pytest.fixture(scope="class")
    def sweeps(self, tech, lib):
        serial_flow = PostOpcTimingFlow(c17(lib), tech, cells=lib)
        concurrent_flow = PostOpcTimingFlow(c17(lib), tech, cells=lib)
        config = FlowConfig(clock_period_ps=500)
        return {
            "serial": FlowSweep(serial_flow).run(config),
            "concurrent": FlowSweep(concurrent_flow).run_concurrent(config),
        }

    def test_modes_bit_identical(self, sweeps):
        ref, got = sweeps["serial"], sweeps["concurrent"]
        assert got.failures == {} and ref.failures == {}
        assert sorted(got.modes) == sorted(ref.modes)
        for mode, ref_report in ref.reports.items():
            got_report = got.reports[mode]
            assert got_report.wns_post == ref_report.wns_post
            assert got_report.wns_drawn == ref_report.wns_drawn
            assert got_report.leakage_post == ref_report.leakage_post
            assert got_report.mask_polygons == ref_report.mask_polygons

    def test_shared_prefix_computed_exactly_once(self, sweeps):
        ctx = sweeps["concurrent"].context
        # same exact sharing the serial sweep guarantees: dedup waits
        # count as hits, so the books agree with TestSweepSharing
        assert ctx.misses["place"] == 1 and ctx.hits["place"] == 3
        assert ctx.misses["sta_drawn"] == 1 and ctx.hits["sta_drawn"] == 3
        assert ctx.misses["tag_critical"] == 1 and ctx.hits["tag_critical"] == 3
        assert ctx.misses["opc.rule_base"] == 1
        assert ctx.consistency() == []

    def test_modes_overlap(self, sweeps):
        # the acceptance criterion: >= 2 stage windows overlapping across
        # the whole sweep, proven from the union of all mode traces
        union = FlowTrace()
        for report in sweeps["concurrent"].reports.values():
            for r in report.trace:
                union.add(r.name, r.wall_s, cache_hit=r.cache_hit,
                          t_start=r.t_start, t_end=r.t_end)
        assert union.concurrent_stages >= 2

    def test_dedup_observed(self, sweeps):
        ctx = sweeps["concurrent"].context
        total_deduped = sum(
            report.trace.deduped
            for report in sweeps["concurrent"].reports.values()
        )
        # the context additionally counts intra-stage memo dedups (the
        # rule-OPC base shared by rule/model/selective), which have no
        # stage record of their own
        assert ctx.deduped >= total_deduped
        assert ctx.deduped >= 1
