"""Tests for the flow-service front-end.

Lifecycle and rejection taxonomy run against real flows without letting
jobs execute (submit is synchronous, so the bounded queue can be filled
before any worker task gets the event loop); the exactly-once guarantee
runs two identical concurrent jobs through one shared context and proves
every artifact key was computed once; the socket protocol is exercised
end-to-end over a UNIX socket.
"""

import asyncio
import json
import os

import pytest

from repro.cells import build_library
from repro.circuits import c17
from repro.flow import (
    EXIT_FAILURE,
    FlowConfig,
    FlowReport,
    FlowService,
    PostOpcTimingFlow,
    ServiceRejectedError,
)
from repro.pdk import make_tech_90nm


@pytest.fixture(scope="module")
def tech():
    return make_tech_90nm()


@pytest.fixture(scope="module")
def lib(tech):
    return build_library(tech)


def _flows(tech, lib):
    return {"c17": PostOpcTimingFlow(c17(lib), tech, cells=lib)}


class TestLifecycleAndRejections:
    def test_rejects_before_start_and_after_stop(self, tech, lib):
        async def scenario():
            service = FlowService(_flows(tech, lib))
            with pytest.raises(ServiceRejectedError) as excinfo:
                service.submit("c17")
            assert excinfo.value.reason == "stopped"
            async with service:
                pass
            with pytest.raises(ServiceRejectedError) as excinfo:
                service.submit("c17")
            assert excinfo.value.reason == "stopped"

        asyncio.run(scenario())

    def test_unknown_design_and_bad_op(self, tech, lib):
        async def scenario():
            async with FlowService(_flows(tech, lib)) as service:
                with pytest.raises(ServiceRejectedError) as excinfo:
                    service.submit("b19")
                assert excinfo.value.reason == "unknown-design"
                with pytest.raises(ServiceRejectedError) as excinfo:
                    service.submit("c17", op="render")
                assert excinfo.value.reason == "bad-config"
                with pytest.raises(ServiceRejectedError) as excinfo:
                    service.status("job-9999")
                assert excinfo.value.reason == "unknown-job"

        asyncio.run(scenario())

    def test_bounded_queue_backpressure(self, tech, lib):
        async def scenario():
            # submit() is synchronous: with no await in between, the
            # worker tasks never run, so the queue genuinely fills
            service = FlowService(_flows(tech, lib), max_queue=2)
            await service.start()
            first = service.submit("c17")
            second = service.submit("c17")
            with pytest.raises(ServiceRejectedError) as excinfo:
                service.submit("c17")
            assert excinfo.value.reason == "queue-full"
            assert service.status(first)["state"] == "queued"
            # stop() drains the never-started jobs as explicit failures
            # rather than silently dropping them
            await service.stop()
            for job_id in (first, second):
                status = service.status(job_id)
                assert status["state"] == "failed"
                assert status["exit_code"] == EXIT_FAILURE
                assert "service stopped" in status["error"]

        asyncio.run(scenario())

    def test_constructor_validation(self, tech, lib):
        with pytest.raises(ValueError):
            FlowService({})
        with pytest.raises(ValueError):
            FlowService(_flows(tech, lib), max_queue=0)
        with pytest.raises(ValueError):
            FlowService(_flows(tech, lib), workers=0)


class TestExactlyOnce:
    def test_two_identical_submissions_compute_each_key_once(
        self, tech, lib, tmp_path
    ):
        config = FlowConfig(opc_mode="rule", clock_period_ps=500)
        flows = _flows(tech, lib)
        ctx = flows["c17"].context

        async def scenario():
            async with FlowService(
                flows, workers=2, run_root=str(tmp_path)
            ) as service:
                a = service.submit("c17", config=config)
                b = service.submit("c17", config=config)
                return (
                    await service.report(a, timeout=600),
                    await service.report(b, timeout=600),
                    await service.result(a, timeout=600),
                    await service.result(b, timeout=600),
                )

        report_a, report_b, result_a, result_b = asyncio.run(scenario())

        for report in (report_a, report_b):
            assert report["state"] == "done" and report["exit_code"] == 0
        assert isinstance(result_a, FlowReport)
        # identical configs through one context: bit-identical reports
        assert result_a.wns_post == result_b.wns_post
        assert result_a.leakage_post == result_b.leakage_post

        # exactly-once: every stage key computed a single time across
        # both jobs (9 stages + the intra-OPC rule-base memo)
        assert all(count == 1 for count in ctx.misses.values())
        assert sum(ctx.misses.values()) == 10
        summaries = (report_a["summary"], report_b["summary"])
        assert sum(s["cache_misses"] for s in summaries) == 9
        assert sum(s["cache_hits"] for s in summaries) == 9
        # the second job was served by the first's in-flight work:
        # dedup counters across the jobs match the context's books
        assert sum(s["deduped"] for s in summaries) <= ctx.deduped
        assert ctx.deduped >= 1
        assert ctx.consistency() == []

        # per-job journals: scheduler events recorded, both runs complete
        for job_id in ("job-0001", "job-0002"):
            journal_path = tmp_path / job_id / "journal.jsonl"
            records = [
                json.loads(line)
                for line in journal_path.read_text().splitlines()
            ]
            types = [r["type"] for r in records]
            assert types[0] == "manifest" and "complete" in types
            events = [r for r in records if r["type"] == "scheduler"]
            assert {e["event"] for e in events} >= {"ready", "start", "done"}
            assert len([e for e in events if e["event"] == "done"]) == 9
        deduped_events = []
        for job_id in ("job-0001", "job-0002"):
            journal_path = tmp_path / job_id / "journal.jsonl"
            for line in journal_path.read_text().splitlines():
                record = json.loads(line)
                if record.get("event") == "deduped":
                    deduped_events.append(record)
        assert len(deduped_events) == sum(s["deduped"] for s in summaries)


class TestHealthAndJobIds:
    def test_health_reflects_queue_workers_breakers_and_cache(self, tech, lib):
        async def scenario():
            async with FlowService(_flows(tech, lib), workers=2) as service:
                idle = service.health()
                assert idle["running"] is True
                assert idle["queue_depth"] == 0
                assert [w["job"] for w in idle["workers"]] == [None, None]
                assert idle["jobs"] == {}
                assert idle["breakers"]["c17"]["state"] == "closed"
                assert idle["cache"]["disk_corruptions"] == 0
                assert idle["executor"]["abandoned"] == 0

                config = FlowConfig(opc_mode="none", clock_period_ps=500)
                job_id = service.submit("c17", config=config)
                # submit is synchronous: the worker has not yet run, so
                # the job is still visible in the queue depth
                assert service.health()["queue_depth"] == 1
                await service.report(job_id, timeout=600)
                settled = service.health()
                assert settled["jobs"] == {"done": 1}
                assert settled["queue_depth"] == 0
                assert settled["breakers"]["c17"]["consecutive_failures"] == 0

        asyncio.run(scenario())

    def test_rejected_submit_does_not_burn_job_ids(self, tech, lib):
        async def scenario():
            service = FlowService(_flows(tech, lib), max_queue=1, workers=1)
            await service.start()
            config = FlowConfig(opc_mode="none", clock_period_ps=500)
            first = service.submit("c17", config=config)
            assert first == "job-0001"
            with pytest.raises(ServiceRejectedError) as excinfo:
                service.submit("c17", config=config)
            assert excinfo.value.reason == "queue-full"
            await service.report(first, timeout=600)
            # the rejected submit consumed no id: the next accepted job
            # is numbered contiguously
            second = service.submit("c17", config=config)
            assert second == "job-0002"
            await service.report(second, timeout=600)
            await service.stop()

        asyncio.run(scenario())


class TestSocketProtocol:
    def test_unix_socket_roundtrip(self, tech, lib, tmp_path):
        socket_path = str(tmp_path / "repro.sock")
        config = {"opc_mode": "rule", "clock_period_ps": 500}

        async def rpc(request):
            reader, writer = await asyncio.open_unix_connection(socket_path)
            writer.write(json.dumps(request).encode() + b"\n")
            await writer.drain()
            response = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            return response

        async def scenario():
            async with FlowService(_flows(tech, lib)) as service:
                await service.serve_unix(socket_path)
                assert os.path.exists(socket_path)

                ping = await rpc({"op": "ping"})
                assert ping["ok"] and ping["designs"] == ["c17"]

                submitted = await rpc({"op": "submit", "design": "c17",
                                       "kind": "flow", "config": config})
                assert submitted["ok"]
                job_id = submitted["id"]

                report = await rpc({"op": "report", "id": job_id,
                                    "timeout": 600})
                assert report["ok"] and report["state"] == "done"
                assert report["exit_code"] == 0
                assert report["summary"]["opc_mode"] == "rule"
                assert report["summary"]["stages"] == 9

                status = await rpc({"op": "status", "id": job_id})
                assert status["ok"] and status["state"] == "done"

                rejected = await rpc({"op": "submit", "design": "b19"})
                assert not rejected["ok"]
                assert rejected["reason"] == "unknown-design"

                bad_field = await rpc({"op": "submit", "design": "c17",
                                       "config": {"rule_recipe": 1}})
                assert not bad_field["ok"]
                assert bad_field["reason"] == "bad-config"

                bad_op = await rpc({"op": "frobnicate"})
                assert not bad_op["ok"] and bad_op["reason"] == "bad-config"

                not_json = await rpc(["not", "an", "object"])
                assert not not_json["ok"]
                assert not_json["reason"] == "bad-request"

        asyncio.run(scenario())

    def test_wire_timeout_and_deadline_validation(self, tech, lib, tmp_path):
        socket_path = str(tmp_path / "repro.sock")

        async def rpc(request):
            reader, writer = await asyncio.open_unix_connection(socket_path)
            writer.write(json.dumps(request).encode() + b"\n")
            await writer.drain()
            response = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            return response

        async def scenario():
            async with FlowService(_flows(tech, lib)) as service:
                await service.serve_unix(socket_path)

                # malformed timeouts are rejected before the job lookup
                for bad in ("soon", True, -1):
                    resp = await rpc({"op": "report", "id": "job-0001",
                                      "timeout": bad})
                    assert not resp["ok"], bad
                    assert resp["reason"] == "bad-config"
                    assert "timeout" in resp["error"]

                bad_deadline = await rpc({"op": "submit", "design": "c17",
                                          "deadline_s": "fast"})
                assert not bad_deadline["ok"]
                assert bad_deadline["reason"] == "bad-config"

                submitted = await rpc({
                    "op": "submit", "design": "c17",
                    "config": {"opc_mode": "rule", "clock_period_ps": 500},
                })
                assert submitted["ok"]
                job_id = submitted["id"]

                # an expired wait is a structured timeout response, not a
                # dropped connection or a bad-request
                early = await rpc({"op": "report", "id": job_id,
                                   "timeout": 0.01})
                assert not early["ok"]
                assert early["reason"] == "timeout"
                assert early["id"] == job_id
                assert "not settled" in early["error"]

                final = await rpc({"op": "report", "id": job_id,
                                   "timeout": 600})
                assert final["ok"] and final["state"] == "done"

                health = await rpc({"op": "health"})
                assert health["ok"] and health["running"]
                assert health["jobs"].get("done") == 1
                assert health["breakers"]["c17"]["state"] == "closed"

        asyncio.run(scenario())
