"""Crash recovery for the flow service: ``kill -9`` survival.

The durability claim under test: a ``repro serve`` process SIGKILLed
mid-job leaves an orphan journal under ``--run-root``; a restart over the
same run root re-enqueues the orphan through the fingerprint-validated
resume path, replays every pre-kill stage from the shared disk cache, and
settles the job with a report bit-identical to an uninterrupted
in-process run.
"""

import json
import os
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cells import build_library
from repro.circuits import c17
from repro.flow import FlowConfig, PostOpcTimingFlow
from repro.pdk import make_tech_90nm

SRC = str(Path(__file__).resolve().parents[2] / "src")

pytestmark = pytest.mark.timeout(600)


def _cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _rpc(socket_path, request, timeout=600.0):
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(socket_path)
        sock.sendall(json.dumps(request).encode() + b"\n")
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                break
            buf += chunk
    return json.loads(buf)


def _wait_for_server(socket_path, proc, deadline_s=300.0):
    deadline = time.time() + deadline_s
    while time.time() < deadline:
        assert proc.poll() is None, "server died during startup"
        if os.path.exists(socket_path):
            try:
                if _rpc(socket_path, {"op": "ping"}, timeout=5.0)["ok"]:
                    return
            except (OSError, ValueError):
                pass
        time.sleep(0.02)
    raise AssertionError("server never answered ping")


def _journal_records(journal_path):
    """Parse journal lines, tolerating a SIGKILL-truncated final line."""
    records = []
    for line in open(journal_path):
        try:
            records.append(json.loads(line))
        except ValueError:
            pass
    return records


class TestServeKillRecovery:
    def test_sigkill_mid_job_then_restart_resumes_orphan(self, tmp_path):
        run_root = str(tmp_path / "runs")
        cache_dir = str(tmp_path / "cache")
        sock_a = str(tmp_path / "a.sock")
        sock_b = str(tmp_path / "b.sock")
        base = [sys.executable, "-m", "repro", "serve", "--designs", "c17",
                "--run-root", run_root, "--cache-dir", cache_dir,
                "--workers", "1"]
        env = _cli_env()
        config = {"opc_mode": "rule", "clock_period_ps": 500}

        # Reference: the same request, uninterrupted, in-process.
        tech = make_tech_90nm()
        lib = build_library(tech)
        reference = PostOpcTimingFlow(c17(lib), tech, cells=lib).run(
            FlowConfig(**config)
        )

        proc = subprocess.Popen(base + ["--socket", sock_a], env=env,
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        try:
            _wait_for_server(sock_a, proc)
            submitted = _rpc(sock_a, {"op": "submit", "design": "c17",
                                      "kind": "flow", "config": config})
            assert submitted["ok"]
            job_id = submitted["id"]
            assert job_id == "job-0001"

            # Kill -9 once the first stage has settled (journaled +
            # written to the disk cache) but well before the run ends.
            journal_path = os.path.join(run_root, job_id, "journal.jsonl")
            deadline = time.time() + 300
            while time.time() < deadline:
                assert proc.poll() is None, "server died before the kill"
                # scheduler events carry a "stage" key too; wait for a
                # settled-stage record specifically
                if os.path.exists(journal_path) and any(
                    '"type": "stage"' in line for line in open(journal_path)
                ):
                    break
                time.sleep(0.005)
            proc.kill()  # SIGKILL: no drain, no journal close, no goodbye
            proc.wait(timeout=600)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=600)

        pre_kill = [r["name"] for r in _journal_records(journal_path)
                    if r.get("type") == "stage"]
        assert pre_kill, "journal never recorded a settled stage"
        assert not any(r.get("type") == "complete"
                       for r in _journal_records(journal_path)), \
            "job finished before the kill; nothing to recover"

        # Restart over the same run root: start() re-enqueues the orphan.
        proc = subprocess.Popen(base + ["--socket", sock_b], env=env,
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)
        try:
            _wait_for_server(sock_b, proc)
            report = _rpc(sock_b, {"op": "report", "id": job_id,
                                   "timeout": 590})
            assert report["ok"], report
            assert report["state"] == "done" and report["exit_code"] == 0
            assert report["resumed"] is True

            # Bit-identical to the uninterrupted reference run.
            summary = report["summary"]
            assert summary["wns_drawn"] == reference.wns_drawn
            assert summary["wns_post"] == reference.wns_post
            assert summary["leakage_post"] == reference.leakage_post
            assert summary["coverage"] == reference.coverage

            # A fresh submit numbers past the recovered orphan.
            fresh = _rpc(sock_b, {"op": "submit", "design": "c17",
                                  "kind": "flow", "config": config})
            assert fresh["ok"] and fresh["id"] == "job-0002"
            assert _rpc(sock_b, {"op": "report", "id": "job-0002",
                                 "timeout": 590})["ok"]
        finally:
            proc.kill()
            proc.wait(timeout=600)

        records = _journal_records(journal_path)
        types = [r["type"] for r in records]
        assert "resumed" in types and types[-1] == "complete"
        # Every stage settled before the kill replays as a cache hit.
        post = [r for r in records if r.get("type") == "stage"]
        replayed = {r["name"]: r for r in post[len(pre_kill):]}
        for name in pre_kill:
            assert replayed[name]["cache_hit"], f"{name} recomputed"
