"""Edge cases of the artifact-key hash.

``stable_hash`` is the foundation of the whole cache/resume machinery:
any input whose hash depends on insertion order, process identity, or
PYTHONHASHSEED silently poisons every artifact key derived from it.
These tests pin the invariants the lintcheck rules (unordered-iteration,
hash-entropy) exist to protect.
"""

import subprocess
import sys
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple

import pytest

from repro.flow.context import stable_hash


class TestSetOrdering:
    def test_set_insertion_order_independent(self):
        a = set()
        for item in ["u1", "u2", "u3", "u4"]:
            a.add(item)
        b = set()
        for item in ["u4", "u2", "u1", "u3"]:
            b.add(item)
        assert stable_hash(a) == stable_hash(b)

    def test_frozenset_matches_equal_frozenset(self):
        assert stable_hash(frozenset({1, 2, 3})) == stable_hash(frozenset({3, 1, 2}))

    def test_set_of_tuples(self):
        a = {("g1", 1.0), ("g2", 2.0), ("g3", 3.0)}
        b = {("g3", 3.0), ("g1", 1.0), ("g2", 2.0)}
        assert stable_hash(a) == stable_hash(b)

    def test_distinct_sets_differ(self):
        assert stable_hash({1, 2, 3}) != stable_hash({1, 2, 4})


class TestDictOrdering:
    def test_key_insertion_order_independent(self):
        a = {"alpha": 1, "beta": 2, "gamma": 3}
        b = {"gamma": 3, "alpha": 1, "beta": 2}
        assert stable_hash(a) == stable_hash(b)

    def test_nested_mappings(self):
        a = {"outer": {"x": 1, "y": 2}, "other": {"z": 3}}
        b = {"other": {"z": 3}, "outer": {"y": 2, "x": 1}}
        assert stable_hash(a) == stable_hash(b)


@dataclass(frozen=True)
class _Inner:
    names: Tuple[str, ...] = ()
    weight: float = 1.0


@dataclass
class _Outer:
    inner: _Inner = field(default_factory=_Inner)
    tags: List[str] = field(default_factory=list)
    lookup: Dict[str, float] = field(default_factory=dict)
    members: FrozenSet[str] = frozenset()


class TestNestedDataclasses:
    def test_default_factory_defaults_are_stable(self):
        assert stable_hash(_Outer()) == stable_hash(_Outer())

    def test_nested_field_change_changes_hash(self):
        assert stable_hash(_Outer()) != stable_hash(
            _Outer(inner=_Inner(weight=2.0))
        )

    def test_set_valued_field_is_order_independent(self):
        a = _Outer(members=frozenset(["m1", "m2", "m3"]))
        b = _Outer(members=frozenset(["m3", "m2", "m1"]))
        assert stable_hash(a) == stable_hash(b)

    def test_equal_but_distinct_instances_collide(self):
        # Content addressing: identity must not leak into the key.
        a = _Outer(tags=["t"], lookup={"k": 1.0})
        b = _Outer(tags=["t"], lookup={"k": 1.0})
        assert a is not b
        assert stable_hash(a) == stable_hash(b)


class _AddressRepr:
    """Default repr: '<... object at 0x...>' — must be rejected."""


class TestAddressRejection:
    def test_default_repr_object_rejected(self):
        with pytest.raises(TypeError, match="address-bearing"):
            stable_hash(_AddressRepr())

    def test_rejected_even_when_nested(self):
        with pytest.raises(TypeError, match="address-bearing"):
            stable_hash({"config": (_AddressRepr(),)})

    def test_value_like_repr_accepted(self):
        class ValueRepr:
            def __repr__(self):
                return "ValueRepr(42)"

        assert stable_hash(ValueRepr()) == stable_hash(ValueRepr())


class TestCrossProcess:
    def test_hash_survives_pythonhashseed_changes(self):
        """The key must not depend on the interpreter's hash randomization
        (which reorders set/dict iteration between processes)."""
        snippet = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro.flow.context import stable_hash\n"
            "value = {'modes': {'rule', 'model', 'selective', 'none'},\n"
            "         'knobs': {'period': 1000.0, 'paths': 5}}\n"
            "print(stable_hash(value))\n"
        )
        digests = set()
        for seed in ("0", "1", "12345"):
            result = subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True, text=True, check=True,
                env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
                cwd=__file__.rsplit("/tests/", 1)[0],
            )
            digests.add(result.stdout.strip())
        assert len(digests) == 1
        assert stable_hash(
            {"modes": {"rule", "model", "selective", "none"},
             "knobs": {"period": 1000.0, "paths": 5}}
        ) in digests
