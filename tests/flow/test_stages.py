"""Tests for the stage-graph flow engine.

Covers the artifact cache (hits on repeated configs, invalidation when a
stage's config slice changes), serial-vs-parallel numerical parity on a
forced multi-tile setup, the sweep's artifact sharing, and the small
supporting pieces (stable_hash, FlowContext, ParallelExecutor, FlowTrace).
"""

import dataclasses
import json

import pytest

from repro.cells import build_library
from repro.circuits import c17, inverter_chain
from repro.flow import (
    FlowConfig,
    FlowContext,
    FlowSweep,
    FlowTrace,
    ParallelExecutor,
    PostOpcTimingFlow,
    split_chunks,
    stable_hash,
)
from repro.litho import LithographySimulator, ProcessCondition
from repro.pdk import make_tech_90nm


@pytest.fixture(scope="module")
def tech():
    return make_tech_90nm()


@pytest.fixture(scope="module")
def lib(tech):
    return build_library(tech)


def _scale_chunk(payload):
    """Module-level so the process backend can pickle it."""
    shared, chunk = payload
    return [shared * x for x in chunk]


def small_tile_simulator(tech):
    """A simulator whose tile grid splits even c17 into many tiles."""
    sim = LithographySimulator.for_tech(tech, ambit=600.0, max_tile_px=192)
    sim.calibrate_to_anchor(tech.rules.gate_length, tech.rules.poly_pitch)
    return sim


class TestStableHash:
    def test_deterministic(self):
        cfg = FlowConfig(opc_mode="rule", clock_period_ps=500)
        assert stable_hash(cfg) == stable_hash(
            FlowConfig(opc_mode="rule", clock_period_ps=500))

    def test_field_sensitivity(self):
        a = FlowConfig(opc_mode="rule")
        b = FlowConfig(opc_mode="model")
        assert stable_hash(a) != stable_hash(b)

    def test_mapping_order_insensitive(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_sequence_order_sensitive(self):
        assert stable_hash([1, 2]) != stable_hash([2, 1])

    def test_condition_hashable(self):
        a = ProcessCondition(dose=1.0, defocus_nm=0.0)
        b = ProcessCondition(dose=0.95, defocus_nm=80.0)
        assert stable_hash(a) != stable_hash(b)


class TestFlowContext:
    def test_memo_computes_once(self):
        ctx = FlowContext()
        calls = []
        for _ in range(3):
            ctx.memo("opc.rule_base", "k1", lambda: calls.append(1) or "mask")
        assert len(calls) == 1
        assert ctx.hits["opc.rule_base"] == 2
        assert ctx.misses["opc.rule_base"] == 1

    def test_lookup_miss_returns_sentinel(self):
        from repro.flow.context import MISSING

        assert FlowContext().lookup("absent") is MISSING


class TestParallelExecutor:
    def test_split_chunks_balanced(self):
        assert split_chunks(list(range(7)), 3) == [[0, 1, 2], [3, 4], [5, 6]]
        assert split_chunks([], 4) == []
        assert split_chunks([1], 8) == [[1]]

    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor("gpu")

    def test_map_chunks_order_preserved(self):
        tasks = list(range(11))
        expected = [3 * x for x in tasks]
        for backend in ("serial", "thread", "process"):
            ex = ParallelExecutor(backend, jobs=3)
            assert ex.map_chunks(_scale_chunk, 3, tasks) == expected

    def test_from_jobs(self):
        assert ParallelExecutor.from_jobs(1).backend == "serial"
        assert ParallelExecutor.from_jobs(4).backend == "process"


class TestFlowTrace:
    def test_roundtrip_and_totals(self, tmp_path):
        trace = FlowTrace()
        trace.add("place", 0.5, cache_hit=False, counters={"gates": 6})
        trace.add("opc", 1.5, cache_hit=True)
        assert trace.cache_hits == 1 and trace.cache_misses == 1
        assert trace.total_wall_s == pytest.approx(2.0)
        assert trace.runtimes() == {"place": 0.5, "opc": 1.5}
        out = tmp_path / "trace.json"
        trace.write_json(str(out))
        payload = json.loads(out.read_text())
        assert [s["name"] for s in payload["stages"]] == ["place", "opc"]
        assert payload["stages"][0]["counters"] == {"gates": 6}


class TestArtifactCache:
    @pytest.fixture(scope="class")
    def flow(self, tech, lib):
        return PostOpcTimingFlow(inverter_chain(3), tech, cells=lib)

    def test_repeat_run_hits_cache(self, flow):
        config = FlowConfig(opc_mode="none", clock_period_ps=400)
        first = flow.run(config)
        second = flow.run(config)
        assert all(not r.cache_hit for r in first.trace)
        assert all(r.cache_hit for r in second.trace)
        assert second.wns_post == first.wns_post
        assert second.measurements == first.measurements
        assert second.leakage_post == first.leakage_post

    def test_condition_change_invalidates_downstream_only(self, flow):
        base = FlowConfig(opc_mode="none", clock_period_ps=400)
        flow.run(base)
        shifted = dataclasses.replace(
            base, condition=ProcessCondition(dose=0.97, defocus_nm=60.0))
        report = flow.run(shifted)
        by_name = {r.name: r for r in report.trace}
        # Upstream stages don't depend on the process condition...
        assert by_name["place"].cache_hit
        assert by_name["sta_drawn"].cache_hit
        assert by_name["tag_critical"].cache_hit
        # ...but metrology and everything fed by it must recompute.
        assert not by_name["metrology"].cache_hit
        assert not by_name["back_annotate"].cache_hit
        assert not by_name["sta_post"].cache_hit

    def test_period_change_is_free(self, flow):
        """STA is cached period-independently and rebased on assembly."""
        a = flow.run(FlowConfig(opc_mode="none", clock_period_ps=400))
        b = flow.run(FlowConfig(opc_mode="none", clock_period_ps=800))
        assert all(r.cache_hit for r in b.trace)
        assert b.wns_drawn == pytest.approx(a.wns_drawn + 400)
        assert b.wns_post == pytest.approx(a.wns_post + 400)

    def test_auto_period_from_drawn_sta(self, tech, lib):
        flow = PostOpcTimingFlow(inverter_chain(3), tech, cells=lib)
        report = flow.run(FlowConfig(opc_mode="none", clock_period_ps=None))
        # Auto period = margin x drawn critical delay -> small positive WNS.
        assert report.drawn_sta.clock_period_ps > 0
        assert report.wns_drawn > 0
        assert report.wns_drawn < 0.2 * report.drawn_sta.clock_period_ps


class TestSweepSharing:
    def test_four_modes_one_placement_one_drawn_sta(self, tech, lib):
        flow = PostOpcTimingFlow(c17(lib), tech, cells=lib)
        result = FlowSweep(flow).run(FlowConfig(clock_period_ps=500))
        assert result.modes == ["none", "rule", "model", "selective"]
        ctx = flow.context
        assert ctx.misses["place"] == 1 and ctx.hits["place"] == 3
        assert ctx.misses["sta_drawn"] == 1 and ctx.hits["sta_drawn"] == 3
        assert ctx.misses["tag_critical"] == 1 and ctx.hits["tag_critical"] == 3
        # rule/model/selective share one rule-OPC base computation.
        assert ctx.misses["opc.rule_base"] == 1
        assert ctx.hits["opc.rule_base"] == 2
        # Every mode produced a full report over the same drawn baseline.
        drawn = {r.wns_drawn for r in result.reports.values()}
        assert len(drawn) == 1
        assert "OPC-mode sweep" in result.table()


class TestSerialParallelParity:
    @pytest.fixture(scope="class")
    def reports(self, tech, lib):
        """Run the identical multi-tile selective flow serially and parallel."""
        config = FlowConfig(opc_mode="selective", clock_period_ps=500,
                            n_critical_paths=2)
        out = {}
        for label, kwargs in {
            "serial": dict(jobs=1),
            "process": dict(jobs=2),
            "thread": dict(executor=ParallelExecutor("thread", 2)),
        }.items():
            flow = PostOpcTimingFlow(c17(lib), tech, cells=lib,
                                     simulator=small_tile_simulator(tech),
                                     **kwargs)
            out[label] = flow.run(config)
        return out

    def test_multiple_tiles_exercised(self, reports):
        counters = reports["serial"].trace.record_for("metrology").counters
        assert counters["tiles"] > 1

    def test_parallel_backends_bit_identical(self, reports):
        ref = reports["serial"]
        for label in ("process", "thread"):
            got = reports[label]
            assert got.wns_post == ref.wns_post
            assert got.wns_drawn == ref.wns_drawn
            assert got.leakage_post == ref.leakage_post
            assert got.mask_polygons == ref.mask_polygons
            assert got.measurements.keys() == ref.measurements.keys()
            for name, m in ref.measurements.items():
                assert got.measurements[name].slice_cds == m.slice_cds
