"""Round-trip and format tests for the binary GDSII reader/writer."""

import io
import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gds import Layout, read_gds, write_gds
from repro.gds.gdsii import _from_gds_real8, _to_gds_real8
from repro.geometry import Polygon, Rect, Transform

POLY = (10, 0)
METAL1 = (30, 0)


def roundtrip(layout: Layout) -> Layout:
    buf = io.BytesIO()
    write_gds(layout, buf)
    buf.seek(0)
    return read_gds(buf)


class TestReal8:
    def test_zero(self):
        assert _from_gds_real8(_to_gds_real8(0.0)) == 0.0

    def test_exact_values(self):
        for value in (1.0, -1.0, 0.001, 1e-9, 256.0, 0.0625):
            assert _from_gds_real8(_to_gds_real8(value)) == pytest.approx(value, rel=1e-12)

    def test_known_encoding_of_one(self):
        # 1.0 = 0.0625 * 16^1 -> exponent 65, mantissa 0.0625.
        data = _to_gds_real8(1.0)
        assert data[0] == 65
        assert int.from_bytes(data[1:], "big") == (1 << 56) // 16

    @given(st.floats(min_value=1e-12, max_value=1e12))
    def test_roundtrip_positive(self, value):
        assert _from_gds_real8(_to_gds_real8(value)) == pytest.approx(value, rel=1e-14)

    @given(st.floats(min_value=1e-12, max_value=1e12))
    def test_roundtrip_negative(self, value):
        assert _from_gds_real8(_to_gds_real8(-value)) == pytest.approx(-value, rel=1e-14)


class TestRoundTrip:
    def test_single_polygon(self):
        layout = Layout("LIB1")
        cell = layout.new_cell("A")
        cell.add_rect(POLY, Rect(0, 0, 90, 600))
        back = roundtrip(layout)
        assert back.name == "LIB1"
        assert back.unit_nm == pytest.approx(1.0)
        assert back["A"].polygons_on(POLY) == [Polygon.from_rect(Rect(0, 0, 90, 600))]

    def test_l_shaped_polygon(self):
        layout = Layout()
        cell = layout.new_cell("L")
        shape = Polygon.from_xy([(0, 0), (400, 0), (400, 200), (200, 200), (200, 400), (0, 400)])
        cell.add_polygon(METAL1, shape)
        back = roundtrip(layout)
        assert back["L"].polygons_on(METAL1) == [shape]

    def test_multiple_layers_and_cells(self):
        layout = Layout()
        a = layout.new_cell("A")
        a.add_rect(POLY, Rect(0, 0, 10, 10))
        a.add_rect(METAL1, Rect(5, 5, 20, 20))
        b = layout.new_cell("B")
        b.add_rect(POLY, Rect(-10, -10, 0, 0))
        back = roundtrip(layout)
        assert set(back.cells) == {"A", "B"}
        assert back["A"].layers() == [POLY, METAL1]

    def test_sref_with_transform(self):
        layout = Layout()
        leaf = layout.new_cell("LEAF")
        leaf.add_rect(POLY, Rect(0, 0, 10, 20))
        top = layout.new_cell("TOP")
        top.add_instance("LEAF", Transform(dx=1000, dy=-500, rotation=90, mirror_x=True))
        top.add_instance("LEAF", Transform(dx=0, dy=0))
        back = roundtrip(layout)
        transforms = [inst.transform for inst in back["TOP"].instances]
        assert Transform(dx=1000, dy=-500, rotation=90, mirror_x=True) in transforms
        assert Transform(dx=0, dy=0) in transforms

    def test_flattened_geometry_identical_after_roundtrip(self):
        layout = Layout()
        leaf = layout.new_cell("LEAF")
        leaf.add_rect(POLY, Rect(0, 0, 90, 600))
        top = layout.new_cell("TOP")
        for i in range(4):
            top.add_instance("LEAF", Transform(dx=240 * i, dy=0, rotation=0, mirror_x=i % 2 == 1))
        back = roundtrip(layout)
        original = sorted((p.bbox.x0, p.bbox.y0) for p in layout.flat_polygons("TOP", POLY))
        recovered = sorted((p.bbox.x0, p.bbox.y0) for p in back.flat_polygons("TOP", POLY))
        assert original == recovered

    def test_negative_coordinates(self):
        layout = Layout()
        cell = layout.new_cell("NEG")
        cell.add_rect(POLY, Rect(-1000, -2000, -500, -100))
        back = roundtrip(layout)
        assert back["NEG"].polygons_on(POLY)[0].bbox == Rect(-1000, -2000, -500, -100)

    def test_file_path_io(self, tmp_path):
        layout = Layout()
        layout.new_cell("A").add_rect(POLY, Rect(0, 0, 5, 5))
        path = str(tmp_path / "out.gds")
        write_gds(layout, path)
        back = read_gds(path)
        assert "A" in back

    @given(
        st.lists(
            st.tuples(st.integers(-10000, 10000), st.integers(-10000, 10000),
                      st.integers(1, 500), st.integers(1, 500)),
            min_size=1,
            max_size=12,
        )
    )
    def test_many_random_rects_roundtrip(self, specs):
        layout = Layout()
        cell = layout.new_cell("R")
        for x, y, w, h in specs:
            cell.add_rect(POLY, Rect(x, y, x + w, y + h))
        back = roundtrip(layout)
        original = sorted(p.bbox.as_tuple() if hasattr(p.bbox, "as_tuple") else
                          (p.bbox.x0, p.bbox.y0, p.bbox.x1, p.bbox.y1)
                          for p in cell.polygons_on(POLY))
        recovered = sorted((p.bbox.x0, p.bbox.y0, p.bbox.x1, p.bbox.y1)
                           for p in back["R"].polygons_on(POLY))
        assert original == recovered


class TestFormat:
    def test_header_is_gds_version_600(self):
        layout = Layout()
        layout.new_cell("A").add_rect(POLY, Rect(0, 0, 1, 1))
        buf = io.BytesIO()
        write_gds(layout, buf)
        data = buf.getvalue()
        length, rec_type, data_type = struct.unpack(">HBB", data[:4])
        assert (rec_type, data_type) == (0x00, 0x02)
        assert struct.unpack(">h", data[4:6])[0] == 600

    def test_stream_ends_with_endlib(self):
        layout = Layout()
        layout.new_cell("A").add_rect(POLY, Rect(0, 0, 1, 1))
        buf = io.BytesIO()
        write_gds(layout, buf)
        data = buf.getvalue()
        assert data[-4:] == struct.pack(">HBB", 4, 0x04, 0x00) + b""

    def test_odd_length_names_padded(self):
        layout = Layout("ODD")
        layout.new_cell("XYZ").add_rect(POLY, Rect(0, 0, 1, 1))
        back = roundtrip(layout)
        assert back.name == "ODD"
        assert "XYZ" in back

    def test_units_record_one_nm(self):
        layout = Layout(unit_nm=1.0)
        layout.new_cell("A").add_rect(POLY, Rect(0, 0, 1, 1))
        back = roundtrip(layout)
        assert back.unit_nm == pytest.approx(1.0, rel=1e-12)
