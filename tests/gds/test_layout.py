"""Tests for the hierarchical layout database."""

import pytest

from repro.gds import Cell, Layout
from repro.geometry import Rect, Transform

POLY = (10, 0)
METAL1 = (30, 0)


def make_inv_like_layout():
    layout = Layout("TEST")
    unit = layout.new_cell("UNIT")
    unit.add_rect(POLY, Rect(0, 0, 10, 100))
    unit.add_rect(METAL1, Rect(-5, 40, 15, 60))
    top = layout.new_cell("TOP")
    top.add_instance("UNIT", Transform.translation(0, 0))
    top.add_instance("UNIT", Transform.translation(50, 0))
    top.add_instance("UNIT", Transform(dx=150, dy=0, rotation=180))
    return layout


class TestCell:
    def test_add_and_query(self):
        cell = Cell("C")
        cell.add_rect(POLY, Rect(0, 0, 1, 1))
        assert len(cell.polygons_on(POLY)) == 1
        assert cell.polygons_on(METAL1) == []
        assert cell.layers() == [POLY]
        assert cell.polygon_count == 1

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Cell("")

    def test_local_bbox(self):
        cell = Cell("C")
        assert cell.local_bbox() is None
        cell.add_rect(POLY, Rect(0, 0, 10, 10))
        cell.add_rect(METAL1, Rect(20, -5, 30, 5))
        assert cell.local_bbox() == Rect(0, -5, 30, 10)


class TestLayout:
    def test_duplicate_cell_rejected(self):
        layout = Layout()
        layout.new_cell("A")
        with pytest.raises(ValueError):
            layout.new_cell("A")

    def test_contains_and_getitem(self):
        layout = make_inv_like_layout()
        assert "UNIT" in layout
        assert layout["UNIT"].name == "UNIT"
        assert "MISSING" not in layout

    def test_top_cells(self):
        layout = make_inv_like_layout()
        assert [c.name for c in layout.top_cells()] == ["TOP"]

    def test_cell_depth(self):
        layout = make_inv_like_layout()
        assert layout.cell_depth("UNIT") == 0
        assert layout.cell_depth("TOP") == 1

    def test_iter_flat_counts(self):
        layout = make_inv_like_layout()
        flat = list(layout.iter_flat("TOP"))
        assert len(flat) == 6  # 3 instances x 2 polygons

    def test_flatten_preserves_area(self):
        layout = make_inv_like_layout()
        flat = layout.flatten("TOP")
        area = sum(p.area for p in flat.polygons_on(POLY))
        assert area == pytest.approx(3 * 10 * 100)

    def test_flat_polygons_transformed(self):
        layout = make_inv_like_layout()
        polys = layout.flat_polygons("TOP", POLY)
        bboxes = sorted((p.bbox.x0, p.bbox.x1) for p in polys)
        # Third instance is rotated 180 about (150, 0): x in [140, 150].
        assert bboxes == [(0, 10), (50, 60), (140, 150)]

    def test_bbox(self):
        layout = make_inv_like_layout()
        box = layout.bbox("TOP")
        assert box.x0 == -5
        assert box.x1 == 155  # mirrored metal1 reaches 150 + 5

    def test_unknown_cell_raises(self):
        layout = make_inv_like_layout()
        with pytest.raises(KeyError):
            list(layout.iter_flat("NOPE"))

    def test_nested_hierarchy_two_levels(self):
        layout = make_inv_like_layout()
        chip = layout.new_cell("CHIP")
        chip.add_instance("TOP", Transform.translation(1000, 2000))
        polys = layout.flat_polygons("CHIP", POLY)
        assert len(polys) == 3
        assert min(p.bbox.x0 for p in polys) == 1000

    def test_nested_transform_with_rotation(self):
        layout = Layout()
        leaf = layout.new_cell("LEAF")
        leaf.add_rect(POLY, Rect(0, 0, 4, 2))
        mid = layout.new_cell("MID")
        mid.add_instance("LEAF", Transform(dx=10, dy=0, rotation=90))
        top = layout.new_cell("TOPC")
        top.add_instance("MID", Transform(dx=0, dy=100, rotation=90))
        (poly,) = layout.flat_polygons("TOPC", POLY)
        # 90 deg then 90 deg = 180 total; area invariant.
        # Leaf rect -> rotate 90 and shift x+10 -> (8,0,10,4); rotate 90 again
        # and shift y+100 -> (-4,108,0,110).
        assert poly.area == pytest.approx(8)
        assert poly.bbox == Rect(-4, 108, 0, 110)
