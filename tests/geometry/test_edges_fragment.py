"""Tests for the edge model and OPC fragmentation/reassembly."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import (
    Edge,
    EdgeOrientation,
    Fragment,
    FragmentKind,
    Point,
    Polygon,
    Rect,
    fragment_polygon,
    polygon_edges,
    rebuild_polygon,
)


def wide_line():
    """A 400x100 horizontal line (nm-ish scale used by the OPC engine)."""
    return Polygon.from_rect(Rect(0, 0, 400, 100))


class TestEdge:
    def test_outward_normal_points_away_from_ccw_interior(self):
        square = Polygon.from_rect(Rect(0, 0, 2, 2))
        for edge in polygon_edges(square):
            probe = edge.midpoint + edge.outward_normal * 0.5
            assert not square.contains_point(probe)

    def test_orientation(self):
        assert Edge(Point(0, 0), Point(5, 0)).orientation == EdgeOrientation.HORIZONTAL
        assert Edge(Point(0, 0), Point(0, 5)).orientation == EdgeOrientation.VERTICAL

    def test_orientation_diagonal_raises(self):
        with pytest.raises(ValueError):
            Edge(Point(0, 0), Point(1, 1)).orientation

    def test_zero_length_raises(self):
        with pytest.raises(ValueError):
            Edge(Point(1, 1), Point(1, 1))

    def test_point_at(self):
        e = Edge(Point(0, 0), Point(10, 0))
        assert e.point_at(0.25) == Point(2.5, 0)

    def test_shifted_moves_outward(self):
        square = Polygon.from_rect(Rect(0, 0, 2, 2))
        bottom = polygon_edges(square)[0]
        moved = bottom.shifted(1.0)
        assert moved.midpoint.y == pytest.approx(-1.0)


class TestFragmentation:
    def test_fragments_cover_perimeter(self):
        frags = fragment_polygon(wide_line(), max_length=60, corner_length=30, line_end_max=120)
        assert sum(f.length for f in frags) == pytest.approx(wide_line().perimeter)

    def test_short_edges_become_line_ends(self):
        frags = fragment_polygon(wide_line(), max_length=60, corner_length=30, line_end_max=120)
        vertical = [f for f in frags if f.orientation == EdgeOrientation.VERTICAL]
        assert vertical and all(f.kind == FragmentKind.LINE_END for f in vertical)

    def test_long_edges_have_corner_fragments_at_both_ends(self):
        frags = fragment_polygon(wide_line(), max_length=60, corner_length=30, line_end_max=120)
        horizontal = [f for f in frags if f.orientation == EdgeOrientation.HORIZONTAL]
        bottom = [f for f in horizontal if f.control_point.y == 0]
        assert bottom[0].kind == FragmentKind.CORNER
        assert bottom[-1].kind == FragmentKind.CORNER
        assert all(f.kind == FragmentKind.NORMAL for f in bottom[1:-1])

    def test_interior_fragments_respect_max_length(self):
        frags = fragment_polygon(wide_line(), max_length=60, corner_length=30, line_end_max=120)
        for f in frags:
            if f.kind == FragmentKind.NORMAL:
                assert f.length <= 60 + 1e-9

    def test_no_fragment_below_min_length(self):
        frags = fragment_polygon(wide_line(), max_length=60, corner_length=30,
                                 line_end_max=120, min_length=10)
        assert all(f.length >= 10 - 1e-9 for f in frags)

    def test_indexes_are_sequential(self):
        frags = fragment_polygon(wide_line())
        assert [f.index for f in frags] == list(range(len(frags)))

    def test_non_rectilinear_raises(self):
        with pytest.raises(ValueError):
            fragment_polygon(Polygon.from_xy([(0, 0), (10, 0), (5, 10)]))


class TestRebuild:
    def test_zero_offsets_roundtrip(self):
        poly = wide_line()
        frags = fragment_polygon(poly)
        assert rebuild_polygon(frags) == poly

    def test_uniform_outward_bias_grows_area(self):
        poly = wide_line()
        frags = fragment_polygon(poly)
        for f in frags:
            f.offset = 5.0
        grown = rebuild_polygon(frags)
        assert grown.bbox == Rect(-5, -5, 405, 105)
        assert grown.area > poly.area

    def test_uniform_inward_bias_shrinks_area(self):
        poly = wide_line()
        frags = fragment_polygon(poly)
        for f in frags:
            f.offset = -5.0
        assert rebuild_polygon(frags).area < poly.area

    def test_single_fragment_move_creates_jog(self):
        poly = wide_line()
        frags = fragment_polygon(poly, max_length=60, corner_length=30, line_end_max=120)
        normal = next(f for f in frags if f.kind == FragmentKind.NORMAL)
        normal.offset = 4.0
        rebuilt = rebuild_polygon(frags)
        # Two jogs of 4nm appear; area grows by fragment length * offset.
        assert rebuilt.area == pytest.approx(poly.area + normal.length * 4.0)
        assert rebuilt.num_vertices > poly.num_vertices

    def test_rebuild_needs_three_fragments(self):
        with pytest.raises(ValueError):
            rebuild_polygon([Fragment(Point(0, 0), Point(1, 0), FragmentKind.NORMAL)])

    @given(st.lists(st.floats(-8, 8), min_size=1, max_size=16))
    def test_area_changes_match_sum_of_moves(self, offsets):
        """First-order area change equals sum(length_i * offset_i) exactly for
        rectilinear jog reconstruction with non-interacting moves."""
        poly = Polygon.from_rect(Rect(0, 0, 1000, 200))
        frags = fragment_polygon(poly, max_length=50, corner_length=25, line_end_max=210)
        # Move only well-separated NORMAL fragments to keep moves independent.
        normals = [f for f in frags if f.kind == FragmentKind.NORMAL][::2]
        moved = []
        for f, off in zip(normals, offsets):
            f.offset = off
            moved.append((f.length, off))
        rebuilt = rebuild_polygon(frags)
        expected = poly.area + sum(length * off for length, off in moved)
        assert rebuilt.area == pytest.approx(expected)
