"""Tests for the spatial index and Manhattan transforms."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import GridIndex, Point, Polygon, Rect, Transform


class TestGridIndex:
    def test_insert_and_query(self):
        idx = GridIndex(cell_size=10)
        idx.insert(Rect(0, 0, 5, 5), "a")
        idx.insert(Rect(20, 20, 25, 25), "b")
        assert idx.query(Rect(1, 1, 2, 2)) == ["a"]
        assert idx.query(Rect(21, 21, 22, 22)) == ["b"]
        assert set(idx.query(Rect(-100, -100, 100, 100))) == {"a", "b"}

    def test_query_empty_region(self):
        idx = GridIndex(cell_size=10)
        idx.insert(Rect(0, 0, 5, 5), "a")
        assert idx.query(Rect(50, 50, 60, 60)) == []

    def test_strict_vs_touching(self):
        idx = GridIndex(cell_size=10)
        idx.insert(Rect(0, 0, 5, 5), "a")
        assert idx.query(Rect(5, 0, 8, 5), strict=True) == []
        assert idx.query(Rect(5, 0, 8, 5), strict=False) == ["a"]

    def test_item_spanning_many_buckets_returned_once(self):
        idx = GridIndex(cell_size=10)
        idx.insert(Rect(0, 0, 100, 100), "big")
        assert idx.query(Rect(0, 0, 100, 100)) == ["big"]

    def test_query_point(self):
        idx = GridIndex(cell_size=10)
        idx.insert(Rect(0, 0, 5, 5), "a")
        assert idx.query_point(3, 3) == ["a"]
        assert idx.query_point(9, 9) == []

    def test_negative_coordinates(self):
        idx = GridIndex(cell_size=10)
        idx.insert(Rect(-25, -25, -15, -15), "neg")
        assert idx.query(Rect(-30, -30, -20, -20)) == ["neg"]

    def test_duplicate_payloads_kept(self):
        idx = GridIndex(cell_size=10)
        idx.insert(Rect(0, 0, 1, 1), "x")
        idx.insert(Rect(2, 2, 3, 3), "x")
        assert len(idx.query(Rect(-1, -1, 4, 4))) == 2

    def test_len_and_all_items(self):
        idx = GridIndex(cell_size=10)
        idx.extend([(Rect(0, 0, 1, 1), 1), (Rect(2, 2, 3, 3), 2)])
        assert len(idx) == 2
        assert sorted(idx.all_items()) == [1, 2]

    def test_rejects_bad_cell_size(self):
        with pytest.raises(ValueError):
            GridIndex(cell_size=0)

    @given(st.lists(st.tuples(st.integers(-50, 50), st.integers(-50, 50)), min_size=1, max_size=30))
    def test_query_agrees_with_brute_force(self, origins):
        idx = GridIndex(cell_size=7)
        boxes = [Rect(x, y, x + 5, y + 5) for x, y in origins]
        for i, b in enumerate(boxes):
            idx.insert(b, i)
        region = Rect(-10, -10, 20, 20)
        expected = sorted(i for i, b in enumerate(boxes) if b.overlaps(region))
        assert sorted(idx.query(region)) == expected


class TestTransform:
    def test_identity(self):
        t = Transform.identity()
        assert t.apply_point(Point(3, 4)) == Point(3, 4)

    def test_translation(self):
        t = Transform.translation(10, -5)
        assert t.apply_point(Point(1, 1)) == Point(11, -4)

    def test_rotations(self):
        p = Point(1, 0)
        assert Transform(rotation=90).apply_point(p) == Point(0, 1)
        assert Transform(rotation=180).apply_point(p) == Point(-1, 0)
        assert Transform(rotation=270).apply_point(p) == Point(0, -1)

    def test_mirror_then_rotate_order(self):
        # GDSII STRANS: mirror about x first, then rotate.
        t = Transform(rotation=90, mirror_x=True)
        assert t.apply_point(Point(1, 1)) == Point(1, 1)
        assert t.apply_point(Point(1, 0)) == Point(0, 1)

    def test_invalid_rotation(self):
        with pytest.raises(ValueError):
            Transform(rotation=45)

    def test_apply_rect(self):
        t = Transform(rotation=90)
        assert t.apply_rect(Rect(0, 0, 2, 1)) == Rect(-1, 0, 0, 2)

    def test_apply_polygon_preserves_area(self):
        poly = Polygon.from_xy([(0, 0), (4, 0), (4, 2), (2, 2), (2, 4), (0, 4)])
        for rotation in (0, 90, 180, 270):
            for mirror in (False, True):
                t = Transform(dx=7, dy=-3, rotation=rotation, mirror_x=mirror)
                assert t.apply_polygon(poly).area == pytest.approx(poly.area)

    @given(
        st.integers(-100, 100),
        st.integers(-100, 100),
        st.sampled_from([0, 90, 180, 270]),
        st.booleans(),
        st.integers(-50, 50),
        st.integers(-50, 50),
    )
    def test_inverse_roundtrips(self, dx, dy, rotation, mirror, px, py):
        t = Transform(dx=dx, dy=dy, rotation=rotation, mirror_x=mirror)
        p = Point(px, py)
        back = t.inverse().apply_point(t.apply_point(p))
        assert back.x == pytest.approx(p.x)
        assert back.y == pytest.approx(p.y)

    @given(
        st.sampled_from([0, 90, 180, 270]),
        st.booleans(),
        st.sampled_from([0, 90, 180, 270]),
        st.booleans(),
        st.integers(-20, 20),
        st.integers(-20, 20),
    )
    def test_compose_matches_sequential_application(self, r1, m1, r2, m2, px, py):
        outer = Transform(dx=3, dy=-7, rotation=r1, mirror_x=m1)
        inner = Transform(dx=-2, dy=5, rotation=r2, mirror_x=m2)
        combined = outer.compose(inner)
        p = Point(px, py)
        expected = outer.apply_point(inner.apply_point(p))
        got = combined.apply_point(p)
        assert got.x == pytest.approx(expected.x)
        assert got.y == pytest.approx(expected.y)
