"""Unit tests for points and grid snapping."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, snap


class TestSnap:
    def test_snaps_to_integer_grid(self):
        assert snap(10.4) == 10.0
        assert snap(10.6) == 11.0

    def test_half_rounds_away_from_zero(self):
        assert snap(0.5) == 1.0
        assert snap(-0.5) == -1.0
        assert snap(2.5) == 3.0

    def test_custom_grid(self):
        assert snap(12.0, grid=5.0) == 10.0
        assert snap(13.0, grid=5.0) == 15.0

    def test_rejects_nonpositive_grid(self):
        with pytest.raises(ValueError):
            snap(1.0, grid=0.0)
        with pytest.raises(ValueError):
            snap(1.0, grid=-1.0)

    @given(st.floats(-1e6, 1e6))
    def test_snapped_value_is_on_grid(self, value):
        snapped = snap(value, grid=1.0)
        assert snapped == round(snapped)

    @given(st.floats(-1e6, 1e6), st.sampled_from([1.0, 2.0, 5.0, 10.0]))
    def test_snap_moves_at_most_half_grid(self, value, grid):
        assert abs(snap(value, grid) - value) <= grid / 2 + 1e-6

    @given(st.floats(-1e6, 1e6))
    def test_snap_is_idempotent(self, value):
        once = snap(value)
        assert snap(once) == once

    @given(st.floats(0, 1e6))
    def test_snap_is_symmetric(self, value):
        assert snap(-value) == -snap(value)


class TestPoint:
    def test_arithmetic(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)
        assert Point(3, 4) - Point(1, 2) == Point(2, 2)
        assert Point(1, 2) * 3 == Point(3, 6)
        assert 3 * Point(1, 2) == Point(3, 6)
        assert -Point(1, -2) == Point(-1, 2)

    def test_dot_and_cross(self):
        assert Point(1, 0).dot(Point(0, 1)) == 0
        assert Point(2, 3).dot(Point(4, 5)) == 23
        assert Point(1, 0).cross(Point(0, 1)) == 1
        assert Point(0, 1).cross(Point(1, 0)) == -1

    def test_norm_and_distance(self):
        assert Point(3, 4).norm() == 5
        assert Point(0, 0).distance(Point(3, 4)) == 5
        assert Point(1, 1).manhattan(Point(4, 5)) == 7

    def test_snapped(self):
        assert Point(10.4, -10.6).snapped() == Point(10.0, -11.0)

    def test_as_tuple(self):
        assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)

    def test_immutability(self):
        p = Point(1, 2)
        with pytest.raises(AttributeError):
            p.x = 3

    @given(st.floats(-1e6, 1e6), st.floats(-1e6, 1e6))
    def test_norm_matches_hypot(self, x, y):
        assert Point(x, y).norm() == pytest.approx(math.hypot(x, y))
