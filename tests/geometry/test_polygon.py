"""Unit and property tests for polygons and rectilinear decomposition."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, Polygon, Rect, decompose_rectilinear
from repro.geometry.decompose import point_in_rects, rectangles_area


def l_shape():
    """An L: a 4x4 square with the top-right 2x2 quadrant removed."""
    return Polygon.from_xy([(0, 0), (4, 0), (4, 2), (2, 2), (2, 4), (0, 4)])


def u_shape():
    """A U with a 2-wide notch down the middle."""
    return Polygon.from_xy([(0, 0), (6, 0), (6, 4), (4, 4), (4, 1), (2, 1), (2, 4), (0, 4)])


class TestConstruction:
    def test_needs_three_vertices(self):
        with pytest.raises(ValueError):
            Polygon.from_xy([(0, 0), (1, 1)])

    def test_normalises_to_ccw(self):
        cw = Polygon.from_xy([(0, 0), (0, 1), (1, 1), (1, 0)])
        ccw = Polygon.from_xy([(0, 0), (1, 0), (1, 1), (0, 1)])
        assert cw.area > 0
        assert cw == ccw

    def test_drops_collinear_and_duplicates(self):
        p = Polygon.from_xy([(0, 0), (1, 0), (2, 0), (2, 0), (2, 2), (0, 2)])
        assert p.num_vertices == 4

    def test_from_rect(self):
        p = Polygon.from_rect(Rect(0, 0, 3, 2))
        assert p.area == 6
        assert p.is_rectilinear()

    def test_from_degenerate_rect_raises(self):
        with pytest.raises(ValueError):
            Polygon.from_rect(Rect(0, 0, 0, 2))

    def test_equality_is_rotation_invariant(self):
        a = Polygon.from_xy([(0, 0), (1, 0), (1, 1), (0, 1)])
        b = Polygon.from_xy([(1, 1), (0, 1), (0, 0), (1, 0)])
        assert a == b
        assert hash(a) == hash(b)


class TestGeometry:
    def test_area_and_perimeter(self):
        p = l_shape()
        assert p.area == 12
        assert p.perimeter == 16

    def test_bbox(self):
        assert l_shape().bbox == Rect(0, 0, 4, 4)

    def test_rectilinear_detection(self):
        assert l_shape().is_rectilinear()
        tri = Polygon.from_xy([(0, 0), (2, 0), (1, 2)])
        assert not tri.is_rectilinear()

    def test_contains_point(self):
        p = l_shape()
        assert p.contains_point(Point(1, 1))
        assert p.contains_point(Point(3, 1))
        assert not p.contains_point(Point(3, 3))  # inside the notch
        assert p.contains_point(Point(0, 0))  # boundary counts

    def test_translated(self):
        p = l_shape().translated(10, 20)
        assert p.bbox == Rect(10, 20, 14, 24)
        assert p.area == 12

    def test_scaled(self):
        p = l_shape().scaled(2)
        assert p.area == 48

    def test_snapped(self):
        p = Polygon.from_xy([(0.4, 0.4), (3.6, 0.4), (3.6, 2.6), (0.4, 2.6)]).snapped()
        assert p.bbox == Rect(0, 0, 4, 3)


class TestDecompose:
    def test_rectangle_decomposes_to_itself(self):
        rects = decompose_rectilinear(Polygon.from_rect(Rect(0, 0, 5, 3)))
        assert rects == [Rect(0, 0, 5, 3)]

    def test_l_shape(self):
        rects = decompose_rectilinear(l_shape())
        assert rectangles_area(rects) == pytest.approx(12)
        for a in rects:
            for b in rects:
                if a is not b:
                    assert not a.overlaps(b)

    def test_u_shape(self):
        rects = decompose_rectilinear(u_shape())
        assert rectangles_area(rects) == pytest.approx(u_shape().area)
        assert point_in_rects(Point(1, 2), rects)
        assert not point_in_rects(Point(3, 3), rects)

    def test_rejects_non_rectilinear(self):
        with pytest.raises(ValueError):
            decompose_rectilinear(Polygon.from_xy([(0, 0), (2, 0), (1, 2)]))

    def test_vertical_merge_keeps_count_small(self):
        # A plus sign: 3 slabs but the central column merges.
        plus = Polygon.from_xy(
            [(1, 0), (2, 0), (2, 1), (3, 1), (3, 2), (2, 2), (2, 3), (1, 3), (1, 2), (0, 2), (0, 1), (1, 1)]
        )
        rects = decompose_rectilinear(plus)
        assert rectangles_area(rects) == pytest.approx(plus.area)
        assert len(rects) == 3


@st.composite
def staircases(draw):
    """Random rectilinear staircase polygons with known area."""
    n_steps = draw(st.integers(1, 6))
    widths = [draw(st.integers(1, 5)) for _ in range(n_steps)]
    heights = [draw(st.integers(1, 5)) for _ in range(n_steps)]
    # Go right along the bottom, then staircase up-and-left back to origin.
    pts = [(0.0, 0.0)]
    x = float(sum(widths))
    pts.append((x, 0.0))
    y = 0.0
    expected = 0.0
    for w, h in zip(reversed(widths), heights):
        y += h
        pts.append((x, y))
        expected += w * y
        x -= w
        pts.append((x, y))
    return Polygon.from_xy(pts), expected


class TestDecomposeProperties:
    @given(staircases())
    def test_area_is_preserved(self, case):
        poly, expected = case
        assert poly.area == pytest.approx(expected)
        rects = decompose_rectilinear(poly)
        assert rectangles_area(rects) == pytest.approx(poly.area)

    @given(staircases())
    def test_rects_are_disjoint_and_inside(self, case):
        poly, _ = case
        rects = decompose_rectilinear(poly)
        for i, a in enumerate(rects):
            assert poly.contains_point(a.center)
            for b in rects[i + 1:]:
                assert not a.overlaps(b)

    @given(staircases())
    def test_interior_points_covered(self, case):
        poly, _ = case
        rects = decompose_rectilinear(poly)
        bbox = poly.bbox
        xs = [bbox.x0 + (i + 0.5) * (bbox.width / 7) for i in range(7)]
        ys = [bbox.y0 + (i + 0.5) * (bbox.height / 7) for i in range(7)]
        for x in xs:
            for y in ys:
                p = Point(x, y)
                strictly_inside = poly.contains_point(p) and all(
                    abs(x - vx) > 1e-9 and abs(y - vy) > 1e-9
                    for vx, vy in [(q.x, q.y) for q in poly.points]
                )
                if strictly_inside:
                    assert point_in_rects(p, rects) == poly.contains_point(p)
