"""Unit tests for axis-aligned rectangles."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, Rect

coords = st.floats(-1e6, 1e6)


@st.composite
def rects(draw):
    x0, x1 = sorted((draw(coords), draw(coords)))
    y0, y1 = sorted((draw(coords), draw(coords)))
    return Rect(x0, y0, x1, y1)


class TestConstruction:
    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)
        with pytest.raises(ValueError):
            Rect(0, 1, 1, 0)

    def test_from_points_any_order(self):
        r = Rect.from_points(Point(5, 7), Point(1, 2))
        assert (r.x0, r.y0, r.x1, r.y1) == (1, 2, 5, 7)

    def test_from_center(self):
        r = Rect.from_center(0, 0, 10, 4)
        assert (r.x0, r.y0, r.x1, r.y1) == (-5, -2, 5, 2)

    def test_bounding(self):
        r = Rect.bounding([Rect(0, 0, 1, 1), Rect(5, -2, 6, 3)])
        assert (r.x0, r.y0, r.x1, r.y1) == (0, -2, 6, 3)

    def test_bounding_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.bounding([])


class TestProperties:
    def test_dimensions(self):
        r = Rect(1, 2, 4, 8)
        assert r.width == 3
        assert r.height == 6
        assert r.area == 18
        assert r.center == Point(2.5, 5)

    def test_corners_ccw(self):
        r = Rect(0, 0, 2, 1)
        assert r.corners == [Point(0, 0), Point(2, 0), Point(2, 1), Point(0, 1)]

    def test_degenerate(self):
        assert Rect(0, 0, 0, 5).is_degenerate()
        assert not Rect(0, 0, 1, 5).is_degenerate()


class TestPredicates:
    def test_contains_point_boundary(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains_point(Point(0, 0))
        assert not r.contains_point(Point(0, 0), strict=True)
        assert r.contains_point(Point(1, 1), strict=True)

    def test_contains_rect(self):
        assert Rect(0, 0, 10, 10).contains_rect(Rect(1, 1, 9, 9))
        assert not Rect(0, 0, 10, 10).contains_rect(Rect(1, 1, 11, 9))

    def test_overlaps_touching(self):
        a, b = Rect(0, 0, 1, 1), Rect(1, 0, 2, 1)
        assert not a.overlaps(b)  # strict: touching edges do not overlap
        assert a.overlaps(b, strict=False)


class TestOperations:
    def test_intersection(self):
        inter = Rect(0, 0, 4, 4).intersection(Rect(2, 2, 6, 6))
        assert inter == Rect(2, 2, 4, 4)

    def test_intersection_disjoint_is_none(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(5, 5, 6, 6)) is None

    def test_intersection_touching_is_degenerate(self):
        inter = Rect(0, 0, 1, 1).intersection(Rect(1, 0, 2, 1))
        assert inter is not None
        assert inter.is_degenerate()

    def test_expanded_and_shrunk(self):
        assert Rect(0, 0, 10, 10).expanded(2) == Rect(-2, -2, 12, 12)
        assert Rect(0, 0, 10, 10).expanded(-2) == Rect(2, 2, 8, 8)

    def test_expanded_invert_raises(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 2, 2).expanded(-2)

    def test_translated(self):
        assert Rect(0, 0, 1, 1).translated(5, -3) == Rect(5, -3, 6, -2)

    def test_overlap_area(self):
        assert Rect(0, 0, 4, 4).overlap_area(Rect(2, 2, 6, 6)) == 4
        assert Rect(0, 0, 1, 1).overlap_area(Rect(5, 5, 6, 6)) == 0

    @given(rects(), rects())
    def test_intersection_commutes(self, a, b):
        ab, ba = a.intersection(b), b.intersection(a)
        assert ab == ba

    @given(rects(), rects())
    def test_intersection_contained_in_both(self, a, b):
        inter = a.intersection(b)
        if inter is not None:
            assert a.contains_rect(inter)
            assert b.contains_rect(inter)

    @given(rects())
    def test_self_intersection_is_identity(self, r):
        assert r.intersection(r) == r

    @given(rects(), st.floats(0.001, 100))
    def test_expand_then_shrink_roundtrips(self, r, margin):
        grown = r.expanded(margin)
        back = grown.expanded(-margin)
        assert back.x0 == pytest.approx(r.x0, rel=1e-9, abs=1e-6)
        assert back.y1 == pytest.approx(r.y1, rel=1e-9, abs=1e-6)
