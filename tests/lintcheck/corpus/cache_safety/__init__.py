"""Corpus package for the dataflow cache-safety rules (never imported)."""
