"""Mini stage framework mirroring repro.flow.stages.FlowStage.

The cache-safety rules key on the ``FlowStage`` base by simple name, so
this self-contained copy lets the corpus exercise them without importing
the real flow package.
"""


class FlowStage:
    name = "base"
    version = 0

    def requires(self, config):
        return ()

    def provides(self):
        return ()

    def config_slice(self, flow, config):
        return None

    def run(self, flow, config, artifacts, counters, context):
        raise NotImplementedError
