"""Corpus: stages whose run() reads inputs missing from the Merkle key.

``HiddenReadStage`` launders a flow read and a config read through two
helper functions and pulls an artifact nothing produces;
``SkipsParentStage`` reads an artifact whose producer it never declared.
``EdgeLiarStage`` lies in both directions of the provides() contract.
``CleanStage`` declares everything it touches and must NOT fire.
"""

from .base import FlowStage


def _pick_knob(flow):
    return flow.hidden_knob  # undeclared flow read, two calls deep


def _scale(flow, config):
    return _pick_knob(flow) * config.secret  # undeclared config read


class HiddenReadStage(FlowStage):
    name = "hidden_read"
    version = 1

    def config_slice(self, flow, config):
        return None  # exposes nothing, yet run() reads config.secret

    def provides(self):
        return ("hidden",)

    def run(self, flow, config, artifacts, counters, context):
        ghost = artifacts["ghost"]  # finding: no stage produces "ghost"
        return {"hidden": _scale(flow, config) + ghost}


class SkipsParentStage(FlowStage):
    name = "skips_parent"
    version = 1

    def config_slice(self, flow, config):
        return ()

    def provides(self):
        return ("skipped",)

    def run(self, flow, config, artifacts, counters, context):
        # finding: produced by "hidden_read", which requires() omits
        return {"skipped": artifacts["hidden"] + 1}


class EdgeLiarStage(FlowStage):
    name = "edge_liar"
    version = 1

    def config_slice(self, flow, config):
        return ()

    def provides(self):
        # finding: "phantom" is declared but run() never returns it
        return ("real", "phantom")

    def run(self, flow, config, artifacts, counters, context):
        # finding: "extra" is returned but provides() never declares it
        return {"real": 1, "extra": 2}


class CleanStage(FlowStage):
    name = "clean"
    version = 2

    def requires(self, config):
        return ("hidden_read",)

    def config_slice(self, flow, config):
        return (config.gain,)

    def provides(self):
        return ("scaled",)

    def run(self, flow, config, artifacts, counters, context):
        # ok: parent declared, config exposed, flow read fingerprint-covered
        return {"scaled": artifacts["hidden"] * config.gain + flow.netlist}
