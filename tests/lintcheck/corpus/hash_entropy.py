"""Corpus: per-run entropy feeding stable_hash / artifact keys."""

import os
import time
from datetime import datetime

from repro.flow.context import stable_hash


def key_with_wallclock(config: object) -> str:
    stamp = time.time()  # finding: entropy in a stable_hash-calling function
    return stable_hash((config, stamp))


def key_with_clock_inline(config: object) -> str:
    return stable_hash((config, datetime.now()))  # finding: datetime.now


def key_with_urandom(config: object) -> str:
    salt = os.urandom(8)  # finding: os.urandom
    return stable_hash((config, salt))


def key_with_address(config: object) -> str:
    return stable_hash((config, id(config)))  # finding: id()


class FakeStage:
    def config_slice(self, flow: object, config: object) -> tuple:
        return (hash(config),)  # finding: salted builtin hash in key feeder


def unrelated_timing() -> float:
    return time.time()  # ok: nowhere near stable_hash
