"""Corpus: mutable default arguments."""

from typing import Dict, List, Optional


def appends(item: int, bucket: List[int] = []) -> List[int]:  # finding
    bucket.append(item)
    return bucket


def merges(extra: Dict[str, int], base: Dict[str, int] = {}) -> Dict[str, int]:  # finding
    base.update(extra)
    return base


def collects(item: int, *, seen: set = set()) -> set:  # finding (kw-only)
    seen.add(item)
    return seen


def compliant(item: int, bucket: Optional[List[int]] = None) -> List[int]:  # ok
    bucket = [] if bucket is None else bucket
    bucket.append(item)
    return bucket
