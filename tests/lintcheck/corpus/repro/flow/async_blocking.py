"""Corpus: ``blocking-in-async`` — loop blocking and the inverse.

``handle`` sleeps on the event loop through a sync helper; ``save``
reaches ``open()`` through a two-hop chain; ``tick`` takes a threading
lock in an async body.  ``good`` routes the same work through
``asyncio.to_thread`` and must stay clean, while ``_thread_body`` —
dispatched to a worker thread — touches an asyncio primitive.
"""

import asyncio
import threading
import time


def slow_poll() -> None:
    time.sleep(0.1)


def _write_marker(path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("done\n")


def persist_marker(path: str) -> None:
    _write_marker(path)


def _thread_body() -> None:
    loop = asyncio.get_event_loop()  # BAD: asyncio primitive from a thread
    loop.stop()


class Gateway:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.pending = 0

    async def handle(self) -> None:
        slow_poll()  # BAD: time.sleep reached on the event loop

    async def tick(self) -> None:
        with self._lock:  # BAD: threading lock held on the event loop
            self.pending += 1

    async def save(self, path: str) -> None:
        persist_marker(path)  # BAD: open() reached on the event loop

    async def good(self, path: str) -> None:
        await asyncio.to_thread(persist_marker, path)
        await asyncio.to_thread(slow_poll)

    async def spawn_thread(self) -> None:
        await asyncio.to_thread(_thread_body)
