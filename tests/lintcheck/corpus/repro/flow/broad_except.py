"""Corpus: broad excepts in a flow-path module."""


def swallows() -> int:
    try:
        return 1
    except Exception:  # finding: swallowed outside the taxonomy
        return 0


def swallows_bare() -> int:
    try:
        return 1
    except:  # noqa: E722  # finding: bare except
        return 0


def rewraps() -> int:
    try:
        return 1
    except Exception as exc:  # ok: wraps and re-raises
        raise RuntimeError("wrapped") from exc
