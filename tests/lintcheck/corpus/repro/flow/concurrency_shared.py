"""Corpus: ``unguarded-shared-state`` — lock-discipline violations.

``Telemetry`` guards ``events`` and ``rows`` under ``self._lock`` in
some methods but touches them bare in others, while a thread pool runs
``pump``; ``staged`` is mutated across threads with no lock at all.
The checker must flag every bare access; ``peek`` carries a waiver and
must stay quiet.
"""

import threading
from concurrent.futures import ThreadPoolExecutor


class Telemetry:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.events = []
        self.rows = []
        self.staged = []

    def record(self, event) -> None:
        with self._lock:
            self.events.append(event)

    def drain(self):
        with self._lock:
            rows = list(self.rows)
            self.rows.clear()
        return rows

    def snapshot(self):
        return list(self.events)  # BAD: guarded attribute read bare

    def subscribe(self, row) -> None:
        self.rows.append(row)  # BAD: guarded attribute written bare

    def stage(self, item) -> None:
        self.staged.append(item)  # BAD: thread-shared, never guarded

    def flush_staged(self):
        return list(self.staged)  # BAD: same unguarded attribute

    def peek(self):
        # repro-lint: allow[unguarded-shared-state] racy telemetry peek: a stale length is fine
        return len(self.events)


def pump(telemetry: Telemetry) -> None:
    telemetry.record("tick")
    telemetry.stage("tick")
    telemetry.subscribe("row")
    telemetry.flush_staged()


def launch(telemetry: Telemetry) -> None:
    with ThreadPoolExecutor(max_workers=2) as pool:
        pool.submit(pump, telemetry)
