"""Corpus: ``lock-order-inversion`` — cyclic acquisition + self-deadlock.

``push`` takes ``_head`` then ``_tail``; ``pop`` takes ``_tail`` and
calls ``_drop``, which takes ``_head`` — a cycle once two threads
interleave.  ``reset`` re-acquires the non-reentrant ``_head`` while
already holding it, which deadlocks on its own.
"""

import threading


class Pipeline:
    def __init__(self) -> None:
        self._head = threading.Lock()
        self._tail = threading.Lock()
        self.items = []

    def push(self, item) -> None:
        with self._head:
            with self._tail:
                self.items.append(item)

    def _drop(self):
        with self._head:
            return self.items.pop()

    def pop(self):
        with self._tail:
            return self._drop()

    def reset(self) -> None:
        with self._head:
            with self._head:  # BAD: threading.Lock does not reenter
                self.items.clear()
