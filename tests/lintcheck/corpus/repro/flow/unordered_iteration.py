"""Corpus: set iteration in a flow-path module without sorted()."""

from typing import List, Set


def journal_gate_names(gates: List[str]) -> List[str]:
    seen = set(gates)
    out = []
    for name in seen:  # finding: set iteration, order leaks into output
        out.append(name)
    return out


def export_layers(extra: Set[str]) -> List[str]:
    layers: Set[str] = {"poly", "opc"} | extra
    return [layer for layer in layers]  # finding: comprehension over a set


def hash_tokens(items: List[str]) -> List[str]:
    return [token for token in {repr(item) for item in items}]  # finding


def compliant(gates: List[str]) -> List[str]:
    seen = set(gates)
    return [name for name in sorted(seen)]  # ok: sorted re-orders
