"""Deliberate array-numerics violations — the numerics-rule corpus.

``dtype-drift`` (float32 meeting float64, complex hitting an ordering),
``silent-broadcast`` (independent 1-D axis lengths combined
elementwise), and ``python-loop-over-ndarray`` does NOT apply here (it
is scoped to timing/metrology/variation — see ``numerics_loops.py`` in
``repro/metrology/``).  Never imported — lint fodder only.
"""

import numpy as np


def mixed_precision(nx: int) -> np.ndarray:
    low = np.zeros(nx, dtype=np.float32)
    high = np.linspace(0.0, 1.0, nx)
    return low + high  # f32 meets f64 -> dtype-drift


def complex_threshold(mask: np.ndarray) -> bool:
    field = np.fft.fft2(mask)
    return field < 0.5  # ordering a complex value -> dtype-drift


def complex_ordering(mask: np.ndarray) -> float:
    spectrum = np.fft.fft2(mask)
    return max(spectrum)  # max() over complex -> dtype-drift


def crossed_axes(nx: int, ny: int, pixel: float) -> np.ndarray:
    fx = np.fft.fftfreq(nx, d=pixel)
    fy = np.fft.fftfreq(ny, d=pixel)
    return fx * fy  # nx-length times ny-length -> silent-broadcast


def safe_grid(nx: int, ny: int, pixel: float) -> np.ndarray:
    # the correct spelling: meshgrid clears the 1-D axis tags (no finding)
    fx = np.fft.fftfreq(nx, d=pixel)
    fy = np.fft.fftfreq(ny, d=pixel)
    fxg, fyg = np.meshgrid(fx, fy)
    return fxg * fxg + fyg * fyg
