"""Deliberate physical-unit violations — the units-rule corpus.

Lives under ``repro/litho/`` so the grid-scoped rule fires: an nm/px
mix here is ``missing-grid-conversion``; a non-grid pair (nm vs ps) is
plain ``unit-mismatch``; a public float API with no establishable unit
is ``unit-unsafe-return``.  Never imported — lint fodder only.
"""

from repro.units import Nanometers, NmPerPixel, Picoseconds, Pixels


def edge_to_sample(edge_nm: Nanometers, width_px: Pixels) -> float:
    # nm + px without a pixel multiply/divide -> missing-grid-conversion
    return edge_nm + width_px


def compare_spaces(cd_nm: Nanometers, span_px: Pixels) -> bool:
    # nm compared against px -> missing-grid-conversion
    return cd_nm < span_px


def skew_against_length(delay_ps: Picoseconds, cd_nm: Nanometers) -> float:
    # ps - nm is no grid crossing, just nonsense -> unit-mismatch
    return delay_ps - cd_nm


def laundered_mix(pitch_nm: Nanometers, pixel: NmPerPixel, offset_px: Pixels) -> float:
    # the conversion happens, but the *unconverted* value is still used:
    # pitch_nm / pixel is px (fine), yet pitch_nm + offset_px remains
    half_px = pitch_nm / pixel / 2
    return half_px + pitch_nm + offset_px  # nm meets px again


def edge_position(samples: int, scale: float) -> float:
    # public litho API returning a bare float of unknowable unit
    # -> unit-unsafe-return
    return samples * scale
