"""Deliberate per-element python loops — ``python-loop-over-ndarray``.

Lives under ``repro/metrology/`` because the rule is scoped to the
modules where per-gate scaling matters.  Never imported.
"""

import numpy as np


def accumulate(values: np.ndarray) -> float:
    total = 0.0
    for v in values:  # direct iteration over an ndarray
        total += v
    return total


def crossings(values: np.ndarray, threshold: float) -> int:
    count = 0
    for k in range(len(values) - 1):  # range(len(arr)) indexing loop
        if (values[k] - threshold) * (values[k + 1] - threshold) < 0:
            count += 1
    return count


def pair_up(n: int) -> list:
    xs = np.linspace(0.0, 1.0, n)
    ys = np.arange(n)
    return [x * y for x, y in zip(xs, ys)]  # comprehension over zip of ndarrays
