"""Corpus: FlowStage subclasses violating the static contract."""

from repro.flow.stages import FlowStage


class NoVersionStage(FlowStage):  # finding: no integer version declared
    name = "no_version"


class NoNameStage(FlowStage):  # finding: no non-empty name declared
    version = 1


class DynamicKeyStage(FlowStage):
    name = "dynamic_key"
    version = 1

    def run(self, flow, config, artifacts, counters, context):
        key = "computed"
        return {key: 1}  # finding: artifact key is not a string literal


class CompliantStage(FlowStage):  # ok
    name = "compliant"
    version = 3

    def provides(self):
        return ("artifact",)

    def run(self, flow, config, artifacts, counters, context):
        return {"artifact": 1}
