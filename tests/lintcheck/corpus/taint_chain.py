"""Corpus: entropy laundered through two helpers into stable_hash.

``laundered_key`` must fire ``entropy-taint`` with the full
source→sink path; the seeded and sorted variants must stay clean.
"""

import random
import time

from repro.flow.context import stable_hash


def _now() -> float:
    return time.time()  # the entropy source, two calls from the sink


def _label(prefix: str) -> str:
    return f"{prefix}-{_now()}"


def laundered_key(config: object) -> str:
    # finding: time.time() -> _now -> _label -> stable_hash() argument
    return stable_hash((config, _label("run")))


def seeded_key(config: object) -> str:
    rng = random.Random(1234)
    return stable_hash((config, rng.random()))  # ok: seeded RNG


def sorted_key(config: object, gates: set) -> str:
    return stable_hash((config, tuple(sorted(gates))))  # ok: sorted
