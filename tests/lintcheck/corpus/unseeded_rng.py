"""Corpus: every flavour of unseeded RNG the checker must flag."""

import random

import numpy as np
from numpy.random import default_rng
from random import gauss


def module_level_random() -> float:
    return random.random()  # finding: hidden global state


def module_level_numpy() -> float:
    return float(np.random.normal())  # finding: hidden global state


def imported_name() -> float:
    return gauss(0.0, 1.0)  # finding: hidden global state


def seedless_generator() -> float:
    rng = random.Random()  # finding: constructed without a seed
    return rng.random()


def seedless_numpy_generator() -> float:
    rng = default_rng()  # finding: constructed without a seed
    return float(rng.normal())


def compliant(seed: int) -> float:
    rng = random.Random(seed)  # ok: explicit seed
    nprng = np.random.default_rng(seed)  # ok: explicit seed
    return rng.random() + float(nprng.normal())
