"""Corpus: the same violations, each silenced by an inline waiver.

This file must lint clean — it proves every rule honours
``# repro-lint: allow[rule-id]`` both on the offending line and on the
line above it.
"""

import random
from typing import List

from repro.flow.context import stable_hash
from repro.flow.stages import FlowStage


def waived_rng() -> float:
    return random.random()  # repro-lint: allow[unseeded-rng] demo waiver


def waived_entropy(config: object) -> str:
    # repro-lint: allow[hash-entropy,entropy-taint] demo waiver on the line above
    return stable_hash((config, id(config)))


def waived_mutable(bucket: List[int] = []) -> List[int]:  # repro-lint: allow[mutable-default]
    return bucket


# repro-lint: allow[stage-contract] demo waiver
class WaivedStage(FlowStage):
    name = "waived"


def waived_both(bucket: List[int] = []) -> float:  # repro-lint: allow[mutable-default,unseeded-rng]
    return random.gauss(0.0, 1.0)  # repro-lint: allow[unseeded-rng]
