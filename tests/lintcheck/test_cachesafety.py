"""Cache-safety dataflow rules: undeclared-input detection over the
corpus fixture package and the stale-version fingerprint workflow."""

import json
import os
import textwrap

import pytest

from repro.__main__ import main
from repro.lintcheck.cachesafety import analyze_stages
from repro.lintcheck.callgraph import Project

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
CORPUS_PKG = os.path.join(REPO_ROOT, "tests", "lintcheck", "corpus", "cache_safety")


@pytest.fixture(scope="module")
def corpus_analyses():
    project = Project.from_files([os.path.join(CORPUS_PKG, "stages.py")])
    return {analysis.cls.name: analysis for analysis in analyze_stages(project)}


class TestRunInputScan:
    def test_flow_read_found_through_two_helpers(self, corpus_analyses):
        scan = corpus_analyses["HiddenReadStage"].scan
        assert "hidden_knob" in scan.flow_reads
        assert scan.flow_reads["hidden_knob"].chain == ("_scale", "_pick_knob")

    def test_config_read_found_through_helper(self, corpus_analyses):
        scan = corpus_analyses["HiddenReadStage"].scan
        assert "secret" in scan.config_reads
        assert scan.config_reads["secret"].chain == ("_scale",)

    def test_artifact_reads_collected(self, corpus_analyses):
        assert "ghost" in corpus_analyses["HiddenReadStage"].scan.artifact_reads
        assert "hidden" in corpus_analyses["SkipsParentStage"].scan.artifact_reads

    def test_declared_contract_extracted(self, corpus_analyses):
        clean = corpus_analyses["CleanStage"]
        assert clean.declared_parents == {"hidden_read"}
        assert clean.declared_config == {"gain"}
        assert clean.produced == {"scaled"}

    def test_clean_stage_has_no_undeclared_reads(self, corpus_analyses):
        clean = corpus_analyses["CleanStage"]
        assert set(clean.scan.config_reads) <= clean.declared_config
        assert set(clean.scan.flow_reads) <= {"netlist"}


def _write_mini_package(tmp_path, run_extra="0", version=1):
    pkg = tmp_path / "minipkg"
    pkg.mkdir(exist_ok=True)
    (pkg / "__init__.py").write_text("")
    (pkg / "base.py").write_text(textwrap.dedent("""
        class FlowStage:
            name = "base"
            version = 0

            def requires(self, config):
                return ()

            def config_slice(self, flow, config):
                return None

            def run(self, flow, config, artifacts, counters, context):
                raise NotImplementedError
    """))
    (pkg / "stages.py").write_text(textwrap.dedent(f"""
        from .base import FlowStage


        class TinyStage(FlowStage):
            name = "tiny"
            version = {version}

            def config_slice(self, flow, config):
                return (config.alpha,)

            def run(self, flow, config, artifacts, counters, context):
                return {{"out": config.alpha + {run_extra}}}
    """))
    return pkg


class TestStaleVersion:
    def test_fingerprint_write_check_mutate_bump_cycle(self, tmp_path, capsys):
        pkg = _write_mini_package(tmp_path)
        fingerprints = tmp_path / "fp.json"
        args = ["--stage-fingerprints", str(fingerprints)]

        assert main(["lint", str(pkg), "--write-stage-fingerprints"] + args) == 0
        assert "1 stage fingerprint(s)" in capsys.readouterr().out

        select = ["lint", str(pkg), "--select", "stale-version"] + args
        assert main(select) == 0  # unchanged code, recorded shape matches
        capsys.readouterr()

        _write_mini_package(tmp_path, run_extra="1")  # logic changed, same version
        assert main(select) == 1
        out = capsys.readouterr().out
        assert "stale-version" in out
        assert "TinyStage" in out

        _write_mini_package(tmp_path, run_extra="1", version=2)  # bumped
        assert main(select) == 0

    def test_refreshing_fingerprints_clears_finding(self, tmp_path, capsys):
        pkg = _write_mini_package(tmp_path)
        fingerprints = tmp_path / "fp.json"
        args = ["--stage-fingerprints", str(fingerprints)]
        assert main(["lint", str(pkg), "--write-stage-fingerprints"] + args) == 0
        _write_mini_package(tmp_path, run_extra="2")
        assert main(["lint", str(pkg), "--select", "stale-version"] + args) == 1
        assert main(["lint", str(pkg), "--write-stage-fingerprints"] + args) == 0
        assert main(["lint", str(pkg), "--select", "stale-version"] + args) == 0

    def test_other_interpreter_fingerprints_are_skipped(self, tmp_path):
        pkg = _write_mini_package(tmp_path)
        fingerprints = tmp_path / "fp.json"
        args = ["--stage-fingerprints", str(fingerprints)]
        assert main(["lint", str(pkg), "--write-stage-fingerprints"] + args) == 0
        _write_mini_package(tmp_path, run_extra="3")
        payload = json.loads(fingerprints.read_text())
        payload["python"] = "0.0"  # shapes from another AST generation
        fingerprints.write_text(json.dumps(payload))
        assert main(["lint", str(pkg), "--select", "stale-version"] + args) == 0

    def test_missing_fingerprint_file_is_silent(self, tmp_path):
        pkg = _write_mini_package(tmp_path)
        assert main(["lint", str(pkg), "--select", "stale-version",
                     "--stage-fingerprints", str(tmp_path / "absent.json")]) == 0

    def test_comment_only_edit_keeps_shape(self, tmp_path):
        pkg = _write_mini_package(tmp_path)
        fingerprints = tmp_path / "fp.json"
        args = ["--stage-fingerprints", str(fingerprints)]
        assert main(["lint", str(pkg), "--write-stage-fingerprints"] + args) == 0
        stages = pkg / "stages.py"
        stages.write_text(stages.read_text() + "\n# a trailing comment\n")
        assert main(["lint", str(pkg), "--select", "stale-version"] + args) == 0


def test_shipped_fingerprints_match_tree_on_this_interpreter():
    """The committed fingerprint file must stay in sync with stages.py
    (on the interpreter generation that wrote it; others skip)."""
    committed = os.path.join(REPO_ROOT, ".repro-stage-fingerprints.json")
    assert os.path.isfile(committed)
    flow_dir = os.path.join(REPO_ROOT, "src", "repro", "flow")
    assert main(["lint", flow_dir, "--select", "stale-version",
                 "--stage-fingerprints", committed]) == 0
