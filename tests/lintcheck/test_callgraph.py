"""The call-graph substrate: module naming, import resolution, class
tables, and static call/property resolution over the real flow package."""

import ast
import os

import pytest

from repro.lintcheck.callgraph import (
    Project,
    annotation_simple_name,
    module_name_for,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
STAGES_PY = os.path.join(REPO_ROOT, "src", "repro", "flow", "stages.py")


@pytest.fixture(scope="module")
def project():
    return Project.from_files([STAGES_PY])


def _annotation(expr_text):
    return annotation_simple_name(ast.parse(expr_text, mode="eval").body)


class TestNaming:
    def test_module_name_walks_packages(self):
        _, name = module_name_for(STAGES_PY)
        assert name == "repro.flow.stages"

    def test_loose_script_is_its_own_module(self, tmp_path):
        script = tmp_path / "script.py"
        script.write_text("x = 1\n")
        _, name = module_name_for(str(script))
        assert name == "script"

    @pytest.mark.parametrize("text,expected", [
        ("FlowConfig", "FlowConfig"),
        ("'PostOpcTimingFlow'", "PostOpcTimingFlow"),
        ("Optional['FlowConfig']", "FlowConfig"),
        ("Dict[str, Any]", "Dict"),
        ("42", None),
    ])
    def test_annotation_simple_name(self, text, expected):
        assert _annotation(text) == expected


class TestProject:
    def test_selected_file_pulls_in_package_context(self, project):
        assert project.is_selected(STAGES_PY)
        assert "repro.flow.postopc" in project.modules
        assert not project.is_selected(project.modules["repro.flow.postopc"].path)

    def test_all_shipped_stages_discovered(self, project):
        names = {cls.name for cls in project.iter_subclasses("FlowStage")}
        assert {"PlaceStage", "DrawnStaStage", "TagCriticalStage", "OpcStage",
                "MetrologyStage", "BackAnnotateStage", "PostStaStage",
                "HoldStage", "PowerStage"} <= names

    def test_resolve_method_walks_bases(self, project):
        hold = project.resolve_class("HoldStage")
        install = project.resolve_method(hold, "install")
        assert install is not None
        assert install.class_qualname.endswith(".FlowStage")

    def test_resolve_call_on_annotated_receiver(self, project):
        run = project.functions["repro.flow.stages.TagCriticalStage.run"]
        call = next(
            node for node in ast.walk(run.node)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "tag_critical_gates"
        )
        callee = project.resolve_call(run, call.func)
        assert callee is not None
        assert callee.qualname.endswith("PostOpcTimingFlow.tag_critical_gates")

    def test_resolve_property_finds_getter(self, project):
        run = project.functions["repro.flow.stages.MetrologyStage.run"]
        getter = project.resolve_property(run, "flow", "gate_rects")
        assert getter is not None
        assert getter.is_property

    def test_dynamic_call_resolves_to_none(self, project):
        run = project.functions["repro.flow.stages.MetrologyStage.run"]
        dynamic = ast.parse("callbacks[0](x)", mode="eval").body
        assert project.resolve_call(run, dynamic.func) is None

    def test_referenced_module_constants_track_edits(self, project):
        run = project.functions["repro.flow.stages.DrawnStaStage.run"]
        constants = project.referenced_module_constants(run)
        assert any(name == "CANONICAL_PERIOD_PS" for _, name, _ in constants)
