"""`repro lint` CLI: exit-code contract, output format, corpus, and the
shipped tree staying green."""

import os
import subprocess

import pytest

from repro.__main__ import main
from repro.lintcheck import check_paths

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC = os.path.join(REPO_ROOT, "src")
CORPUS = os.path.join(REPO_ROOT, "tests", "lintcheck", "corpus")


class TestExitCodes:
    def test_shipped_tree_is_green(self, capsys):
        assert main(["lint", SRC]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_1_with_file_line_rule(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(items=[]):\n    return items\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert f"{bad}:1:" in out
        assert "mutable-default" in out

    def test_missing_path_exit_3(self, capsys):
        assert main(["lint", os.path.join(str(REPO_ROOT), "no-such-dir")]) == 3
        assert "error:" in capsys.readouterr().err

    def test_unknown_rule_exit_3(self, capsys):
        assert main(["lint", SRC, "--select", "no-such-rule"]) == 3

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("unseeded-rng", "hash-entropy", "unordered-iteration",
                        "stage-contract", "stage-edge-contract",
                        "broad-except", "mutable-default",
                        "cache-undeclared-input", "stale-version",
                        "entropy-taint", "unguarded-shared-state",
                        "lock-order-inversion", "blocking-in-async"):
            assert rule_id in out

    def test_select_restricts_rules(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import random\n"
            "def f(items=[]):\n"
            "    return random.random()\n"
        )
        assert main(["lint", str(bad), "--select", "unseeded-rng",
                     "--ignore", "unseeded-rng"]) == 0
        assert main(["lint", str(bad), "--select", "unseeded-rng"]) == 1

    def test_comma_separated_select(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import random\n"
            "def f(items=[]):\n"
            "    return random.random()\n"
        )
        assert main(["lint", str(bad),
                     "--select", "unseeded-rng,mutable-default"]) == 1
        out = capsys.readouterr().out
        assert "unseeded-rng" in out and "mutable-default" in out
        assert main(["lint", str(bad), "--select", "unseeded-rng",
                     "--ignore", "unseeded-rng,mutable-default"]) == 0

    def test_exclude_drops_matching_files(self):
        assert main(["lint", CORPUS, "--exclude", "corpus"]) == 3  # nothing left
        assert main(["lint", CORPUS]) == 1


class TestCorpus:
    """The checker checking itself: every rule fires somewhere in the
    corpus, and the fully-waived file contributes nothing."""

    def test_every_rule_fires_in_corpus(self):
        # stale-version is absent by design: it needs a fingerprint file
        # recorded for the corpus stages, exercised in test_cachesafety.
        findings = check_paths([CORPUS])
        fired = {finding.rule for finding in findings}
        assert fired == {
            "unseeded-rng", "hash-entropy", "unordered-iteration",
            "stage-contract", "stage-edge-contract", "broad-except",
            "mutable-default", "cache-undeclared-input", "entropy-taint",
            "unguarded-shared-state", "lock-order-inversion",
            "blocking-in-async",
            "unit-mismatch", "missing-grid-conversion", "unit-unsafe-return",
            "dtype-drift", "silent-broadcast", "python-loop-over-ndarray",
        }

    def test_waived_file_is_clean(self):
        waived = os.path.join(CORPUS, "waived_ok.py")
        assert check_paths([waived]) == []
        # ...and only because of the waivers:
        assert check_paths([waived], apply_waivers=False) != []

    def test_scoped_rules_fire_only_under_flow_paths(self):
        findings = check_paths([CORPUS])
        for finding in findings:
            if finding.rule in ("unordered-iteration", "broad-except"):
                assert "repro" + os.sep + "flow" in finding.path or \
                    "repro/flow" in finding.path


class TestNoWaiversFlag:
    def test_no_waivers_reports_audited_sites(self, capsys):
        # The four deliberate broad-except sites (cache corruption
        # tolerance, worker fault tolerance, sweep partial-failure
        # capture) must stay visible to an audit run.
        assert main(["lint", SRC, "--no-waivers", "--select", "broad-except"]) == 1
        out = capsys.readouterr().out
        assert "context.py" in out
        assert "parallel.py" in out
        assert "sweep.py" in out


@pytest.mark.parametrize("design_flag", [[], ["--select", "stage-contract"]])
def test_shipped_stage_graph_satisfies_contract(design_flag):
    """All nine shipped stages declare name + version (satellite fix)."""
    stages_py = os.path.join(SRC, "repro", "flow", "stages.py")
    assert main(["lint", stages_py] + design_flag) == 0


class TestDataflowAcceptance:
    """The PR's acceptance gates, straight from the issue."""

    def test_shipped_flow_has_no_undeclared_inputs(self):
        flow_dir = os.path.join(SRC, "repro", "flow")
        assert main(["lint", "--select", "cache-undeclared-input", flow_dir]) == 0

    def test_hidden_read_corpus_stage_exits_1_naming_attr_and_class(self, capsys):
        package = os.path.join(CORPUS, "cache_safety")
        assert main(["lint", "--select", "cache-undeclared-input", package]) == 1
        out = capsys.readouterr().out
        assert "HiddenReadStage" in out
        assert "hidden_knob" in out
        assert "CleanStage" not in out

    def test_laundered_entropy_chain_reported_with_path(self, capsys):
        chain = os.path.join(CORPUS, "taint_chain.py")
        assert main(["lint", "--select", "entropy-taint", chain]) == 1
        out = capsys.readouterr().out
        assert "time.time()" in out
        assert "_now -> _label -> stable_hash() argument" in out
        # seeded / sorted variants stay clean: exactly one finding
        assert out.count("entropy-taint") == 2  # finding line + summary

    def test_jobs_output_matches_serial(self, capsys):
        assert main(["lint", CORPUS]) == 1
        serial = capsys.readouterr().out
        assert main(["lint", CORPUS, "--jobs", "4"]) == 1
        assert capsys.readouterr().out == serial


class TestBaselineFlags:
    def test_write_then_apply_baseline_round_trips(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["lint", CORPUS, "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert main(["lint", CORPUS, "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "suppressed" in out
        assert "clean" in out

    def test_new_finding_not_in_baseline_still_fails(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        tracked = tmp_path / "tracked.py"
        tracked.write_text("def f(items=[]):\n    return items\n")
        assert main(["lint", str(tracked), "--write-baseline", str(baseline)]) == 0
        tracked.write_text(
            "import random\n"
            "x = random.random()\n"
            "def f(items=[]):\n"
            "    return items\n"
        )
        capsys.readouterr()
        assert main(["lint", str(tracked), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "unseeded-rng" in out
        assert "mutable-default" not in out  # grandfathered

    def test_corrupt_baseline_exit_3(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("not json")
        assert main(["lint", CORPUS, "--baseline", str(baseline)]) == 3


def _git(*args, cwd):
    subprocess.run(
        ["git", "-c", "user.name=t", "-c", "user.email=t@t"] + list(args),
        cwd=cwd, check=True, capture_output=True,
    )


class TestChangedFlag:
    """`--changed` scopes the run to git-touched files: the pre-commit
    fast path."""

    @pytest.fixture
    def repo(self, tmp_path, monkeypatch):
        _git("init", "-q", cwd=tmp_path)
        (tmp_path / "clean.py").write_text("X = 1\n")
        (tmp_path / "bad.py").write_text(
            "def f(items=[]):\n    return items\n")
        _git("add", "-A", cwd=tmp_path)
        _git("commit", "-qm", "seed", cwd=tmp_path)
        monkeypatch.chdir(tmp_path)
        return tmp_path

    def test_nothing_changed_is_clean(self, repo, capsys):
        assert main(["lint", str(repo), "--changed"]) == 0
        assert "no changed Python files" in capsys.readouterr().out

    def test_modified_file_is_linted_others_skipped(self, repo, capsys):
        (repo / "bad.py").write_text(
            "import random\nx = random.random()\n")
        assert main(["lint", str(repo), "--changed"]) == 1
        out = capsys.readouterr().out
        assert "unseeded-rng" in out
        assert "clean.py" not in out

    def test_untracked_file_is_picked_up(self, repo, capsys):
        (repo / "fresh.py").write_text(
            "def g(items=[]):\n    return items\n")
        assert main(["lint", str(repo), "--changed"]) == 1
        out = capsys.readouterr().out
        assert "fresh.py" in out and "mutable-default" in out

    def test_changed_findings_match_full_run_on_touched_files(
            self, repo, capsys):
        (repo / "bad.py").write_text(
            "import random\n"
            "def f(items=[]):\n"
            "    return random.random()\n"
        )
        main(["lint", str(repo / "bad.py")])
        full = capsys.readouterr().out
        main(["lint", str(repo), "--changed"])
        changed = capsys.readouterr().out
        assert changed == full

    def test_outside_git_exit_3(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("GIT_DIR", str(tmp_path / "nowhere"))
        (tmp_path / "mod.py").write_text("X = 1\n")
        assert main(["lint", str(tmp_path), "--changed"]) == 3
        assert "git" in capsys.readouterr().err

    def test_detached_head_checkout(self, repo, capsys):
        """CI checkouts are detached; the diff base is HEAD's commit."""
        head = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=repo,
            capture_output=True, text=True, check=True,
        ).stdout.strip()
        _git("checkout", "-q", "--detach", head, cwd=repo)
        (repo / "bad.py").write_text("import random\nx = random.random()\n")
        assert main(["lint", str(repo), "--changed"]) == 1
        out = capsys.readouterr().out
        assert "unseeded-rng" in out
        assert "clean.py" not in out

    def test_renamed_file_lints_new_path_only(self, repo, capsys):
        """A staged rename lints the post-rename path; the old path is
        gone and must not be resurrected into the file list."""
        _git("mv", "bad.py", "moved.py", cwd=repo)
        # touch it so rename detection still pairs old->new (R score < 100%
        # keeps both paths in the -z stream, the case the parser must split)
        (repo / "moved.py").write_text(
            "import random\n\n\ndef f(items=[]):\n    return random.random()\n")
        _git("add", "-A", cwd=repo)
        assert main(["lint", str(repo), "--changed"]) == 1
        out = capsys.readouterr().out
        assert "moved.py" in out
        assert "bad.py" not in out

    def test_repo_with_no_commits_diffs_against_empty_tree(
            self, tmp_path, monkeypatch, capsys):
        _git("init", "-q", cwd=tmp_path)
        (tmp_path / "fresh.py").write_text("def g(items=[]):\n    return items\n")
        _git("add", "-A", cwd=tmp_path)  # staged but never committed
        monkeypatch.chdir(tmp_path)
        assert main(["lint", str(tmp_path), "--changed"]) == 1
        assert "mutable-default" in capsys.readouterr().out
