"""Concurrency rules over the corpus fixtures and the shipped tree:
lock-discipline inference (`unguarded-shared-state`), acquisition-order
cycles (`lock-order-inversion`), and event-loop blocking
(`blocking-in-async`), plus their SARIF/baseline round-trips."""

import json
import os

import pytest

from repro.__main__ import main
from repro.lintcheck import check_paths
from repro.lintcheck.core import rules_for
from repro.lintcheck.formats import apply_baseline, load_baseline, write_baseline

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC_FLOW = os.path.join(REPO_ROOT, "src", "repro", "flow")
CORPUS_FLOW = os.path.join(REPO_ROOT, "tests", "lintcheck", "corpus", "repro", "flow")
RULES = ["unguarded-shared-state", "lock-order-inversion", "blocking-in-async"]
SELECT = ",".join(RULES)


def _corpus(select=RULES, **kwargs):
    return check_paths([CORPUS_FLOW], rules=rules_for(select=select), **kwargs)


@pytest.fixture(scope="module")
def findings():
    return _corpus()


def _at(findings, filename, line):
    return [f for f in findings
            if os.path.basename(f.path) == filename and f.line == line]


class TestUnguardedSharedState:
    def test_guarded_attr_bare_read_flagged_with_chain(self, findings):
        [found] = _at(findings, "concurrency_shared.py", 32)
        assert found.rule == "unguarded-shared-state"
        assert "Telemetry.events is read without holding Telemetry._lock" \
            in found.message
        # the witness carries the full thread entry -> access chain
        assert "pool.submit(pump)" in found.message
        assert "pump -> Telemetry.record" in found.message

    def test_guarded_attr_bare_write_flagged(self, findings):
        [found] = _at(findings, "concurrency_shared.py", 35)
        assert "Telemetry.rows is written without holding" in found.message

    def test_never_guarded_shared_attr_flagged(self, findings):
        [found] = _at(findings, "concurrency_shared.py", 38)
        assert "no lock held" in found.message
        assert "no access ever holds one of Telemetry's locks" in found.message

    def test_waived_access_suppressed_only_by_waiver(self, findings):
        assert _at(findings, "concurrency_shared.py", 45) == []
        unwaived = _corpus(apply_waivers=False)
        assert len(_at(unwaived, "concurrency_shared.py", 45)) == 1


class TestLockOrderInversion:
    def test_cycle_reported_with_both_orders(self, findings):
        [found] = _at(findings, "lock_order.py", 20)
        assert found.rule == "lock-order-inversion"
        assert "Pipeline._head" in found.message
        assert "Pipeline._tail" in found.message
        # one leg of the cycle goes through a call, and says so
        assert "via Pipeline._drop" in found.message
        assert "deadlock" in found.message

    def test_nonreentrant_reacquire_flagged(self, findings):
        [found] = _at(findings, "lock_order.py", 33)
        assert "does not reenter" in found.message
        assert "Pipeline._head" in found.message


class TestBlockingInAsync:
    def test_transitive_sleep_reported_with_chain(self, findings):
        [found] = _at(findings, "async_blocking.py", 39)
        assert found.rule == "blocking-in-async"
        assert "time.sleep()" in found.message
        assert "via slow_poll" in found.message
        assert "asyncio.to_thread" in found.message

    def test_two_hop_open_chain(self, findings):
        [found] = _at(findings, "async_blocking.py", 46)
        assert "open()" in found.message
        assert "persist_marker -> _write_marker" in found.message

    def test_threading_lock_in_async_body(self, findings):
        [found] = _at(findings, "async_blocking.py", 42)
        assert "self._lock" in found.message
        assert "event loop" in found.message

    def test_asyncio_from_thread_context_inverse(self, findings):
        [found] = _at(findings, "async_blocking.py", 29)
        assert "asyncio.get_event_loop()" in found.message
        assert "thread context" in found.message
        assert "_thread_body" in found.message

    def test_to_thread_routed_calls_stay_clean(self, findings):
        for line in (49, 50, 53):
            assert _at(findings, "async_blocking.py", line) == []


class TestShippedFlowAcceptance:
    """The issue's gate: the shipped flow tree lints clean under the
    three rules after the audit — and only because the audited waivers
    are in place."""

    def test_shipped_flow_is_clean(self, capsys):
        assert main(["lint", "--select", SELECT, SRC_FLOW]) == 0
        assert "clean (3 rules)" in capsys.readouterr().out

    def test_audited_waivers_stay_visible_to_no_waivers(self, capsys):
        assert main(["lint", "--select", SELECT, "--no-waivers", SRC_FLOW]) == 1
        out = capsys.readouterr().out
        # the deliberate on-loop journal/flush sites in the audit
        assert "scheduler.py" in out
        assert "postopc.py" in out


class TestRoundTrips:
    def test_sarif_carries_chain_messages(self, capsys):
        assert main(["lint", CORPUS_FLOW, "--select", SELECT,
                     "--format", "sarif"]) == 1
        document = json.loads(capsys.readouterr().out)
        [run] = document["runs"]
        fired = {res["ruleId"] for res in run["results"]}
        assert set(RULES) <= fired
        chained = [res["message"]["text"] for res in run["results"]
                   if res["ruleId"] == "blocking-in-async"
                   and "->" in res["message"]["text"]]
        assert chained  # call-chain paths survive the SARIF encoding

    def test_baseline_round_trip(self, tmp_path, findings):
        path = str(tmp_path / "baseline.json")
        assert write_baseline(findings, path) == len(findings) > 0
        kept, suppressed = apply_baseline(findings, load_baseline(path))
        assert kept == []
        assert suppressed == len(findings)
