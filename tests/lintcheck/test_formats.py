"""Output formats (text/json/sarif) and the findings baseline."""

import io
import json
import os

import pytest

from repro.__main__ import main
from repro.lintcheck.core import Finding
from repro.lintcheck.formats import (
    apply_baseline,
    load_baseline,
    render_json,
    render_sarif,
    write_baseline,
)
from repro.flow.errors import InputValidationError

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
CORPUS = os.path.join(REPO_ROOT, "tests", "lintcheck", "corpus")

FINDINGS = [
    Finding("src/a.py", 3, 4, "unseeded-rng", "module-level RNG"),
    Finding("src\\b.py", 10, 0, "entropy-taint", "time.time() -> stable_hash()"),
]


def assert_sarif_shape(document):
    """The minimal SARIF 2.1.0 shape code scanning requires."""
    assert document["version"] == "2.1.0"
    assert document["$schema"].endswith("sarif-2.1.0.json")
    assert isinstance(document["runs"], list) and document["runs"]
    run = document["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    rule_ids = {rule["id"] for rule in driver["rules"]}
    for result in run["results"]:
        assert result["ruleId"] in rule_ids
        assert result["level"] == "error"
        assert isinstance(result["message"]["text"], str) and result["message"]["text"]
        location = result["locations"][0]["physicalLocation"]
        assert "\\" not in location["artifactLocation"]["uri"]
        assert location["region"]["startLine"] >= 1
        assert location["region"]["startColumn"] >= 1


class TestSarif:
    def test_handwritten_findings_pass_shape(self):
        out = io.StringIO()
        render_sarif(FINDINGS, out)
        document = json.loads(out.getvalue())
        assert_sarif_shape(document)
        assert len(document["runs"][0]["results"]) == 2

    def test_cli_sarif_over_corpus_passes_shape(self, capsys):
        assert main(["lint", CORPUS, "--format", "sarif"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert_sarif_shape(document)
        fired = {r["ruleId"] for r in document["runs"][0]["results"]}
        assert "cache-undeclared-input" in fired
        assert "entropy-taint" in fired

    def test_clean_run_emits_empty_results(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main(["lint", str(clean), "--format", "sarif"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert_sarif_shape(document)
        assert document["runs"][0]["results"] == []
        # rule metadata is still advertised for the run
        assert document["runs"][0]["tool"]["driver"]["rules"]


class TestJson:
    def test_json_format_round_trips_fields(self, capsys):
        assert main(["lint", CORPUS, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        entry = payload["findings"][0]
        assert set(entry) == {"path", "line", "col", "rule", "message"}

    def test_direct_render(self):
        out = io.StringIO()
        render_json(FINDINGS, out)
        payload = json.loads(out.getvalue())
        assert len(payload["findings"]) == 2


class TestBaseline:
    def test_round_trip_suppresses_everything(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        assert write_baseline(FINDINGS, path) == 2
        kept, suppressed = apply_baseline(FINDINGS, load_baseline(path))
        assert kept == []
        assert suppressed == 2

    def test_line_drift_does_not_resurrect(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        write_baseline(FINDINGS, path)
        drifted = [
            Finding(f.path, f.line + 40, f.col, f.rule, f.message)
            for f in FINDINGS
        ]
        kept, suppressed = apply_baseline(drifted, load_baseline(path))
        assert kept == []
        assert suppressed == 2

    def test_multiset_semantics(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        twice = [FINDINGS[0], FINDINGS[0]]
        write_baseline(twice, path)
        thrice = [FINDINGS[0]] * 3
        kept, suppressed = apply_baseline(thrice, load_baseline(path))
        assert suppressed == 2
        assert len(kept) == 1  # the third occurrence is NEW

    def test_new_rule_or_message_is_kept(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        write_baseline([FINDINGS[0]], path)
        kept, suppressed = apply_baseline(FINDINGS, load_baseline(path))
        assert suppressed == 1
        assert [f.rule for f in kept] == ["entropy-taint"]

    def test_malformed_baseline_is_validation_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"nope\": true}")
        with pytest.raises(InputValidationError):
            load_baseline(str(bad))
        missing = tmp_path / "absent.json"
        with pytest.raises(InputValidationError):
            load_baseline(str(missing))
