"""Array-numerics rules: ``dtype-drift``, ``silent-broadcast``, and the
scoped ``python-loop-over-ndarray`` vectorization-opportunity lint."""

from __future__ import annotations

import textwrap

from repro.lintcheck.core import check_source, rules_for

DTYPE = rules_for(select=["dtype-drift"])
BROADCAST = rules_for(select=["silent-broadcast"])
LOOPS = rules_for(select=["python-loop-over-ndarray"])


def lint(source, rules, path="src/repro/litho/mod.py"):
    return check_source(textwrap.dedent(source), path=path, rules=rules)


class TestDtypeDrift:
    def test_f32_meets_f64_in_binop(self):
        found = lint("""
            import numpy as np

            def f(n):
                low = np.zeros(n, dtype=np.float32)
                high = np.linspace(0.0, 1.0, n)
                return low + high
        """, DTYPE)
        assert [f.rule for f in found] == ["dtype-drift"]

    def test_matching_f32_is_clean(self):
        found = lint("""
            import numpy as np

            def f(n):
                low = np.zeros(n, dtype=np.float32)
                high = np.ones(n, dtype=np.float32)
                return low + high
        """, DTYPE)
        assert found == []

    def test_complex_survives_fft_until_ordered(self):
        found = lint("""
            import numpy as np

            def f(mask, level):
                field = np.fft.fft2(mask)
                return field < level
        """, DTYPE)
        assert [f.rule for f in found] == ["dtype-drift"]

    def test_abs_realizes_complex(self):
        found = lint("""
            import numpy as np

            def f(mask, level):
                field = np.abs(np.fft.fft2(mask))
                return field < level
        """, DTYPE)
        assert found == []

    def test_ordering_call_over_complex(self):
        found = lint("""
            import numpy as np

            def f(mask):
                spectrum = np.fft.fft2(mask)
                return max(spectrum)
        """, DTYPE)
        assert [f.rule for f in found] == ["dtype-drift"]

    def test_ifft_real_part_is_clean(self):
        found = lint("""
            import numpy as np

            def f(spectrum, level):
                image = np.real(np.fft.ifft2(spectrum))
                return image > level
        """, DTYPE)
        assert found == []


class TestSilentBroadcast:
    def test_independent_axis_lengths_combined(self):
        found = lint("""
            import numpy as np

            def f(nx, ny, pixel):
                fx = np.fft.fftfreq(nx, d=pixel)
                fy = np.fft.fftfreq(ny, d=pixel)
                return fx * fy
        """, BROADCAST)
        assert [f.rule for f in found] == ["silent-broadcast"]

    def test_same_axis_is_clean(self):
        found = lint("""
            import numpy as np

            def f(nx, pixel):
                fx = np.fft.fftfreq(nx, d=pixel)
                window = np.arange(nx)
                return fx * window
        """, BROADCAST)
        assert found == []

    def test_meshgrid_clears_the_tags(self):
        found = lint("""
            import numpy as np

            def f(nx, ny, pixel):
                fx = np.fft.fftfreq(nx, d=pixel)
                fy = np.fft.fftfreq(ny, d=pixel)
                fxg, fyg = np.meshgrid(fx, fy)
                return fxg * fxg + fyg * fyg
        """, BROADCAST)
        assert found == []

    def test_slicing_clears_the_tag(self):
        found = lint("""
            import numpy as np

            def f(nx, ny):
                xs = np.arange(nx)
                ys = np.arange(ny)
                return xs[: ny // 2] + ys[: ny // 2]
        """, BROADCAST)
        assert found == []


class TestLoopOverNdarray:
    PATH = "src/repro/metrology/mod.py"

    def test_direct_iteration(self):
        found = lint("""
            import numpy as np

            def f(values: np.ndarray):
                total = 0.0
                for v in values:
                    total += v
                return total
        """, LOOPS, path=self.PATH)
        assert [f.rule for f in found] == ["python-loop-over-ndarray"]

    def test_range_len_indexing(self):
        found = lint("""
            import numpy as np

            def f(values: np.ndarray):
                count = 0
                for k in range(len(values) - 1):
                    count += values[k]
                return count
        """, LOOPS, path=self.PATH)
        assert [f.rule for f in found] == ["python-loop-over-ndarray"]

    def test_comprehension_over_zip(self):
        found = lint("""
            import numpy as np

            def f(n):
                xs = np.linspace(0.0, 1.0, n)
                ys = np.arange(n)
                return [x * y for x, y in zip(xs, ys)]
        """, LOOPS, path=self.PATH)
        assert [f.rule for f in found] == ["python-loop-over-ndarray"]

    def test_plain_list_loop_is_clean(self):
        found = lint("""
            def f(values):
                total = 0.0
                for v in values:
                    total += v
                return total
        """, LOOPS, path=self.PATH)
        assert found == []

    def test_out_of_scope_module_is_exempt(self):
        found = lint("""
            import numpy as np

            def f(values: np.ndarray):
                total = 0.0
                for v in values:
                    total += v
                return total
        """, LOOPS, path="src/repro/litho/mod.py")
        assert found == []
