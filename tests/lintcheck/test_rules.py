"""Per-rule coverage: each rule fires on a violating snippet and is
suppressed by a `# repro-lint: allow[...]` waiver on / above the line."""

import textwrap

import pytest

from repro.lintcheck import check_source, iter_rules, rules_for
from repro.flow.errors import InputValidationError

FLOW_PATH = "src/repro/flow/fake_module.py"


def lint(snippet, path="src/repro/anywhere.py", **kwargs):
    return check_source(textwrap.dedent(snippet), path=path, **kwargs)


def rule_ids(findings):
    return [finding.rule for finding in findings]


class TestUnseededRng:
    def test_module_level_call_fires(self):
        findings = lint("""
            import random
            x = random.random()
        """)
        assert rule_ids(findings) == ["unseeded-rng"]
        assert findings[0].line == 3

    def test_numpy_alias_fires(self):
        findings = lint("""
            import numpy as np
            x = np.random.normal()
        """)
        assert rule_ids(findings) == ["unseeded-rng"]

    def test_from_import_fires(self):
        findings = lint("""
            from random import shuffle
            shuffle([1, 2])
        """)
        assert rule_ids(findings) == ["unseeded-rng"]

    def test_seedless_constructor_fires(self):
        findings = lint("""
            import random
            rng = random.Random()
        """)
        assert rule_ids(findings) == ["unseeded-rng"]
        assert "without a seed" in findings[0].message

    def test_seeded_generators_clean(self):
        assert lint("""
            import random
            import numpy as np
            rng = random.Random(7)
            nprng = np.random.default_rng(seed=7)
            x = rng.random() + float(nprng.normal())
        """) == []

    def test_waiver_suppresses(self):
        assert lint("""
            import random
            x = random.random()  # repro-lint: allow[unseeded-rng]
        """) == []


class TestHashEntropy:
    def test_wallclock_in_hashing_function_fires(self):
        findings = lint("""
            import time
            from repro.flow.context import stable_hash
            def make_key(config):
                return stable_hash((config, time.time()))
        """)
        assert rule_ids(findings) == ["hash-entropy"]

    def test_config_slice_is_key_feeding_even_without_call(self):
        findings = lint("""
            class MyStage:
                def config_slice(self, flow, config):
                    return (id(config),)
        """)
        assert rule_ids(findings) == ["hash-entropy"]

    def test_entropy_away_from_hashing_clean(self):
        assert lint("""
            import time
            def stopwatch():
                return time.time()
        """) == []

    def test_monotonic_timing_near_hash_clean(self):
        # perf_counter is fine: it never flows into the key, and banning
        # it would flag every timed stage-graph loop.
        assert lint("""
            import time
            from repro.flow.context import stable_hash
            def timed_key(config):
                start = time.perf_counter()
                return stable_hash(config), time.perf_counter() - start
        """) == []

    def test_waiver_suppresses(self):
        assert lint("""
            from repro.flow.context import stable_hash
            def make_key(config):
                # repro-lint: allow[hash-entropy] test waiver
                return stable_hash((config, id(config)))
        """) == []


class TestUnorderedIteration:
    def test_scoped_to_flow_paths(self):
        snippet = """
            def walk(items):
                seen = set(items)
                return [x for x in seen]
        """
        assert lint(snippet, path=FLOW_PATH) != []
        assert lint(snippet, path="src/repro/litho/other.py") == []

    def test_for_loop_over_set_literal_fires(self):
        findings = lint("""
            for item in {"b", "a"}:
                print(item)
        """, path=FLOW_PATH)
        assert rule_ids(findings) == ["unordered-iteration"]

    def test_annotated_set_variable_fires(self):
        findings = lint("""
            from typing import Set
            def dump(extra):
                layers: Set[str] = extra
                return [x for x in layers]
        """, path=FLOW_PATH)
        assert rule_ids(findings) == ["unordered-iteration"]

    def test_sorted_wrapping_clean(self):
        assert lint("""
            def walk(items):
                seen = set(items)
                for x in sorted(seen):
                    print(x)
                return sorted(repr(x) for x in seen)
        """, path=FLOW_PATH) == []

    def test_waiver_suppresses(self):
        assert lint("""
            def walk(items):
                seen = set(items)
                # repro-lint: allow[unordered-iteration] membership probe only
                return [x for x in seen]
        """, path=FLOW_PATH) == []


class TestStageContract:
    def test_missing_version_fires(self):
        findings = lint("""
            from repro.flow.stages import FlowStage
            class MyStage(FlowStage):
                name = "mine"
        """)
        assert rule_ids(findings) == ["stage-contract"]
        assert "version" in findings[0].message

    def test_missing_name_fires(self):
        findings = lint("""
            from repro.flow.stages import FlowStage
            class MyStage(FlowStage):
                version = 2
        """)
        assert rule_ids(findings) == ["stage-contract"]
        assert "name" in findings[0].message

    def test_bool_version_rejected(self):
        findings = lint("""
            from repro.flow.stages import FlowStage
            class MyStage(FlowStage):
                name = "mine"
                version = True
        """)
        assert rule_ids(findings) == ["stage-contract"]

    def test_computed_artifact_key_fires(self):
        findings = lint("""
            from repro.flow.stages import FlowStage
            class MyStage(FlowStage):
                name = "mine"
                version = 1
                def run(self, flow, config, artifacts, counters, context):
                    key = "a" + "b"
                    return {key: 1}
        """)
        assert rule_ids(findings) == ["stage-contract"]
        assert "string literals" in findings[0].message

    def test_compliant_stage_clean(self):
        assert lint("""
            from repro.flow.stages import FlowStage
            class MyStage(FlowStage):
                name = "mine"
                version = 4
                def run(self, flow, config, artifacts, counters, context):
                    return {"artifact": 1, "other": 2}
        """) == []

    def test_unrelated_class_clean(self):
        assert lint("""
            class NotAStage:
                pass
        """) == []

    def test_waiver_suppresses(self):
        assert lint("""
            from repro.flow.stages import FlowStage
            # repro-lint: allow[stage-contract] prototype stage
            class MyStage(FlowStage):
                name = "mine"
        """) == []


class TestBroadExcept:
    def test_swallowing_handler_fires(self):
        findings = lint("""
            try:
                x = 1
            except Exception:
                x = 0
        """, path=FLOW_PATH)
        assert rule_ids(findings) == ["broad-except"]

    def test_scoped_outside_flow_clean(self):
        assert lint("""
            try:
                x = 1
            except Exception:
                x = 0
        """, path="src/repro/litho/other.py") == []

    def test_reraising_handler_clean(self):
        assert lint("""
            from repro.flow.errors import StageError
            try:
                x = 1
            except Exception as exc:
                raise StageError("s", None, exc) from exc
        """, path=FLOW_PATH) == []

    def test_raise_in_nested_def_does_not_count(self):
        findings = lint("""
            try:
                x = 1
            except Exception:
                def helper():
                    raise RuntimeError("not a re-raise")
                x = 0
        """, path=FLOW_PATH)
        assert rule_ids(findings) == ["broad-except"]

    def test_waiver_suppresses(self):
        assert lint("""
            try:
                x = 1
            # repro-lint: allow[broad-except] tolerance is the feature here
            except Exception:
                x = 0
        """, path=FLOW_PATH) == []


class TestMutableDefault:
    def test_list_default_fires(self):
        findings = lint("""
            def f(items=[]):
                return items
        """)
        assert rule_ids(findings) == ["mutable-default"]

    def test_kwonly_set_default_fires(self):
        findings = lint("""
            def f(*, seen=set()):
                return seen
        """)
        assert rule_ids(findings) == ["mutable-default"]

    def test_none_default_clean(self):
        assert lint("""
            def f(items=None, k=3, name="x", frozen=()):
                return items
        """) == []

    def test_waiver_suppresses(self):
        assert lint("""
            def f(items=[]):  # repro-lint: allow[mutable-default]
                return items
        """) == []


class TestEngine:
    def test_syntax_error_reported_not_raised(self):
        findings = lint("def broken(:\n")
        assert rule_ids(findings) == ["syntax-error"]

    def test_unknown_rule_rejected(self):
        with pytest.raises(InputValidationError):
            rules_for(select=["no-such-rule"])

    def test_rule_registry_is_stable_and_complete(self):
        ids = [rule.id for rule in iter_rules()]
        assert ids == sorted(ids)
        assert set(ids) == {
            "broad-except", "hash-entropy", "mutable-default",
            "stage-contract", "stage-edge-contract", "unordered-iteration",
            "unseeded-rng", "cache-undeclared-input", "stale-version",
            "entropy-taint", "unguarded-shared-state",
            "lock-order-inversion", "blocking-in-async",
            "unit-mismatch", "missing-grid-conversion",
            "unit-unsafe-return", "dtype-drift", "silent-broadcast",
            "python-loop-over-ndarray",
        }

    def test_decorator_line_waiver_covers_decorated_statement(self):
        # The finding anchors at the `def`, but the waiver sits on the
        # decorator line above it (satellite fix).
        snippet = """
            import functools

            @functools.lru_cache  # repro-lint: allow[mutable-default]
            def f(items=[]):
                return items
        """
        assert lint(snippet) == []
        assert rule_ids(lint(snippet, apply_waivers=False)) == ["mutable-default"]

    def test_waiver_above_decorator_stack_covers_statement(self):
        snippet = """
            import functools

            # repro-lint: allow[mutable-default] justified fixture
            @functools.lru_cache
            @functools.wraps(print)
            def f(items=[]):
                return items
        """
        assert lint(snippet) == []

    def test_unwaived_decorated_def_still_fires(self):
        snippet = """
            import functools

            @functools.lru_cache
            def f(items=[]):
                return items
        """
        assert rule_ids(lint(snippet)) == ["mutable-default"]

    def test_no_waivers_mode_reports_waived_finding(self):
        snippet = """
            def f(items=[]):  # repro-lint: allow[mutable-default]
                return items
        """
        assert lint(snippet) == []
        assert rule_ids(lint(snippet, apply_waivers=False)) == ["mutable-default"]

    def test_findings_carry_location(self):
        findings = lint("""
            def f(items=[]):
                return items
        """)
        (finding,) = findings
        assert finding.path == "src/repro/anywhere.py"
        assert finding.line == 2
        assert finding.render().startswith("src/repro/anywhere.py:2:")
