"""Inter-procedural entropy taint: sources, sanitizers, sinks, chains."""

import os
import textwrap

from repro.lintcheck import check_paths, rules_for

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
CORPUS = os.path.join(REPO_ROOT, "tests", "lintcheck", "corpus")

TAINT_RULES = None  # resolved lazily so registration has happened


def lint_file(tmp_path, text, name="mod.py", apply_waivers=True):
    target = tmp_path / name
    target.write_text(textwrap.dedent(text))
    rules = rules_for(select=["entropy-taint"])
    return check_paths([str(target)], rules=rules, apply_waivers=apply_waivers)


class TestDirectFlows:
    def test_direct_entropy_into_stable_hash(self, tmp_path):
        findings = lint_file(tmp_path, """
            import time
            from repro.flow.context import stable_hash

            def key(config):
                return stable_hash((config, time.time()))
        """)
        assert [f.rule for f in findings] == ["entropy-taint"]
        assert "time.time()" in findings[0].message
        assert "stable_hash() argument" in findings[0].message

    def test_variable_hop_keeps_source_location(self, tmp_path):
        findings = lint_file(tmp_path, """
            import os
            from repro.flow.context import stable_hash

            def key(config):
                salt = os.urandom(8)
                tagged = (config, salt)
                return stable_hash(tagged)
        """)
        assert len(findings) == 1
        assert "os.urandom()" in findings[0].message
        assert ":6)" in findings[0].message  # source anchored where drawn

    def test_seeded_rng_is_not_a_source(self, tmp_path):
        assert lint_file(tmp_path, """
            import random
            from repro.flow.context import stable_hash

            def key(config):
                rng = random.Random(1234)
                return stable_hash((config, rng.random()))
        """) == []

    def test_unseeded_rng_is_a_source(self, tmp_path):
        findings = lint_file(tmp_path, """
            import random
            from repro.flow.context import stable_hash

            def key(config):
                return stable_hash((config, random.random()))
        """)
        assert len(findings) == 1


class TestLaunderedChains:
    def test_two_helper_chain_carries_full_path(self, tmp_path):
        findings = lint_file(tmp_path, """
            import time
            from repro.flow.context import stable_hash

            def _now():
                return time.time()

            def _label(prefix):
                return f"{prefix}-{_now()}"

            def key(config):
                return stable_hash((config, _label("run")))
        """)
        assert len(findings) == 1
        assert "-> _now -> _label -> stable_hash() argument" in findings[0].message

    def test_corpus_chain_fixture_fires_once(self):
        rules = rules_for(select=["entropy-taint"])
        findings = check_paths(
            [os.path.join(CORPUS, "taint_chain.py")], rules=rules
        )
        assert len(findings) == 1
        assert "_now -> _label" in findings[0].message

    def test_sanitized_helper_chain_is_clean(self, tmp_path):
        assert lint_file(tmp_path, """
            from repro.flow.context import stable_hash

            def _gates(names):
                return tuple(sorted(set(names)))

            def key(config, names):
                return stable_hash((config, _gates(names)))
        """) == []


class TestOrderTaint:
    def test_set_materialized_unsorted_fires(self, tmp_path):
        findings = lint_file(tmp_path, """
            from repro.flow.context import stable_hash

            def key(config, names):
                gates = set(names)
                return stable_hash((config, tuple(gates)))
        """)
        assert len(findings) == 1
        assert "unsorted set iteration" in findings[0].message

    def test_sorted_set_is_clean(self, tmp_path):
        assert lint_file(tmp_path, """
            from repro.flow.context import stable_hash

            def key(config, names):
                gates = set(names)
                return stable_hash((config, tuple(sorted(gates))))
        """) == []

    def test_set_loop_accumulation_fires(self, tmp_path):
        findings = lint_file(tmp_path, """
            from repro.flow.context import stable_hash

            def key(config, names):
                out = []
                for name in set(names):
                    out.append(name)
                return stable_hash((config, out))
        """)
        assert len(findings) == 1


class TestOtherSinks:
    def test_journal_record_call_is_a_sink(self, tmp_path):
        findings = lint_file(tmp_path, """
            import time

            def log_mode(journal, mode):
                journal.record_mode(mode, stamp=time.time())
        """)
        assert len(findings) == 1
        assert "record_mode()" in findings[0].message

    def test_stage_run_return_is_a_sink(self, tmp_path):
        findings = lint_file(tmp_path, """
            import time


            class FlowStage:
                name = "base"
                version = 0


            class StampStage(FlowStage):
                name = "stamp"
                version = 1

                def run(self, flow, config, artifacts, counters, context):
                    return {"stamped": time.time()}
        """)
        assert len(findings) == 1
        assert "stage run() artifact dict" in findings[0].message

    def test_clean_stage_run_return_is_silent(self, tmp_path):
        assert lint_file(tmp_path, """
            class FlowStage:
                name = "base"
                version = 0


            class PlainStage(FlowStage):
                name = "plain"
                version = 1

                def run(self, flow, config, artifacts, counters, context):
                    return {"doubled": config.alpha * 2}
        """) == []


class TestWaivers:
    def test_inline_waiver_suppresses_taint_finding(self, tmp_path):
        text = """
            import time
            from repro.flow.context import stable_hash

            def key(config):
                # repro-lint: allow[entropy-taint] deliberate telemetry salt
                return stable_hash((config, time.time()))
        """
        assert lint_file(tmp_path, text) == []
        assert lint_file(tmp_path, text, apply_waivers=False) != []
