"""The strict-typing gate as a pytest test.

CI runs ``mypy src`` as its own job; this wrapper makes the same gate
fail the test suite anywhere mypy is installed (and skip cleanly where
it is not — the runtime image does not ship it).
"""

import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def test_mypy_strict_packages():
    pytest.importorskip("mypy")
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "src"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, (
        "mypy failed:\n" + result.stdout + result.stderr
    )


def test_py_typed_marker_ships():
    assert os.path.exists(os.path.join(REPO_ROOT, "src", "repro", "py.typed"))
