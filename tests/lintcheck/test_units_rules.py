"""Unit-lattice analysis: algebra, seeding, interprocedural propagation,
and the three rules (`unit-mismatch`, `missing-grid-conversion`,
`unit-unsafe-return`)."""

from __future__ import annotations

import os
import tempfile
import textwrap

import pytest

from repro.lintcheck.core import check_paths, rules_for
from repro.lintcheck.units import (
    DIMLESS,
    NM,
    NM_PER_PX,
    PS,
    PX,
    combine_add,
    combine_div,
    combine_mul,
)

UNIT_RULES = rules_for(select=[
    "unit-mismatch", "missing-grid-conversion", "unit-unsafe-return",
])


def lint(source, path="src/repro/litho/mod.py", select=None):
    """Write a module under a realistic repo-relative path and lint it
    (the unit rules are whole-program: they need real files)."""
    rules = UNIT_RULES if select is None else rules_for(select=select)
    root = tempfile.mkdtemp(prefix="unitslint-")
    target = os.path.join(root, path)
    os.makedirs(os.path.dirname(target), exist_ok=True)
    with open(target, "w", encoding="utf-8") as fh:
        fh.write(textwrap.dedent(source))
    return check_paths([target], rules=rules)


class TestLatticeAlgebra:
    def test_add_same_unit_keeps_it(self):
        assert combine_add(NM, NM) == (NM, False)

    def test_add_incompatible_flags_mismatch(self):
        unit, mismatch = combine_add(NM, PX)
        assert mismatch and unit is None

    def test_unknown_and_dimensionless_are_permissive(self):
        assert combine_add(NM, None) == (NM, False)
        assert combine_add(None, PX) == (PX, False)
        assert combine_add(NM, DIMLESS) == (NM, False)
        assert combine_add(None, None) == (None, False)

    def test_mul_transports_across_the_raster_boundary(self):
        assert combine_mul(PX, NM_PER_PX) == NM
        assert combine_mul(NM_PER_PX, PX) == NM
        assert combine_mul(NM, DIMLESS) == NM

    def test_div_cancels_and_converts(self):
        assert combine_div(NM, NM) == DIMLESS
        assert combine_div(NM, NM_PER_PX) == PX
        assert combine_div(NM, PX) == NM_PER_PX
        assert combine_div(PS, DIMLESS) == PS


class TestSeeding:
    def test_alias_annotations_are_units(self):
        found = lint("""
            from repro.units import Nanometers, Pixels

            def f(a: Nanometers, b: Pixels):
                return a + b
        """)
        assert [f.rule for f in found] == ["missing-grid-conversion"]

    def test_suffix_convention_is_a_unit(self):
        found = lint("""
            def f(width_nm, span_px):
                x = width_nm - span_px
                return x
        """)
        assert [f.rule for f in found] == ["missing-grid-conversion"]

    def test_exact_name_pixel_is_the_conversion_factor(self):
        # dividing nm by `pixel` produces px; comparing that against
        # another px value is NOT a mismatch
        found = lint("""
            def f(width_nm, pixel, limit_px):
                return (width_nm / pixel) > limit_px
        """)
        assert found == []

    def test_ps_vs_nm_is_plain_unit_mismatch_even_in_litho(self):
        found = lint("""
            def f(delay_ps, width_nm):
                return delay_ps + width_nm
        """)
        assert [f.rule for f in found] == ["unit-mismatch"]

    def test_nm_px_outside_litho_is_unit_mismatch(self):
        found = lint("""
            def f(width_nm, span_px):
                return width_nm + span_px
        """, path="src/repro/timing/mod.py")
        assert [f.rule for f in found] == ["unit-mismatch"]


class TestTransport:
    def test_pixel_multiply_crosses_cleanly(self):
        found = lint("""
            def f(span_px, pixel, width_nm):
                return span_px * pixel + width_nm
        """)
        assert found == []

    def test_division_by_pixel_crosses_cleanly(self):
        found = lint("""
            def f(width_nm, pixel, span_px):
                return width_nm / pixel + span_px
        """)
        assert found == []

    def test_ratio_of_same_units_is_dimensionless(self):
        found = lint("""
            def f(a_nm, b_nm, scale):
                return (a_nm / b_nm) * scale
        """)
        assert found == []

    def test_constants_never_report(self):
        found = lint("""
            def f(width_nm):
                return width_nm + 0.5 - 2
        """)
        assert found == []


class TestInterprocedural:
    def test_return_unit_flows_through_helper(self):
        found = lint("""
            def half_width(width_nm):
                return width_nm / 2

            def f(width_nm, span_px):
                return half_width(width_nm) + span_px
        """)
        assert [f.rule for f in found] == ["missing-grid-conversion"]

    def test_declared_return_alias_is_authoritative(self):
        found = lint("""
            from repro.units import Pixels

            def to_px(value, pixel) -> Pixels:
                return value / pixel

            def f(width_nm, pixel):
                return to_px(width_nm, pixel) + width_nm
        """)
        assert [f.rule for f in found] == ["missing-grid-conversion"]

    def test_dataclass_field_units_seed_attribute_access(self):
        found = lint("""
            from dataclasses import dataclass
            from repro.units import Nanometers, Pixels

            @dataclass
            class Grid:
                origin: Nanometers
                extent: Pixels

            def f(grid: Grid):
                return grid.origin + grid.extent
        """)
        assert [f.rule for f in found] == ["missing-grid-conversion"]

    def test_self_attribute_suffix_convention(self):
        found = lint("""
            class Image:
                def __init__(self):
                    self.x0_nm = 0.0

                def shift(self, offset_px):
                    return self.x0_nm + offset_px
        """)
        assert [f.rule for f in found] == ["missing-grid-conversion"]


class TestUnitUnsafeReturn:
    def test_bare_float_with_unknown_unit_fires(self):
        found = lint("""
            def edge(samples, scale) -> float:
                return samples * scale
        """, select=["unit-unsafe-return"])
        assert [f.rule for f in found] == ["unit-unsafe-return"]

    def test_alias_annotation_satisfies(self):
        found = lint("""
            from repro.units import Nanometers

            def edge(samples, scale) -> Nanometers:
                return samples * scale
        """, select=["unit-unsafe-return"])
        assert found == []

    def test_inferable_unit_satisfies(self):
        found = lint("""
            def span(a_nm, b_nm) -> float:
                return a_nm - b_nm
        """, select=["unit-unsafe-return"])
        assert found == []

    def test_private_and_unannotated_are_exempt(self):
        found = lint("""
            def _helper(samples, scale) -> float:
                return samples * scale

            def legacy(samples, scale):
                return samples * scale
        """, select=["unit-unsafe-return"])
        assert found == []

    def test_out_of_scope_paths_are_exempt(self):
        found = lint("""
            def edge(samples, scale) -> float:
                return samples * scale
        """, path="src/repro/flow/mod.py", select=["unit-unsafe-return"])
        assert found == []


class TestWaivers:
    def test_inline_waiver_suppresses(self):
        found = lint("""
            def f(width_nm, span_px):
                return width_nm + span_px  # repro-lint: allow[missing-grid-conversion]
        """)
        assert found == []


@pytest.mark.parametrize("module", [
    "src/repro/litho/raster.py",
    "src/repro/litho/contour.py",
    "src/repro/litho/imaging.py",
])
def test_shipped_grid_modules_are_clean(module):
    from repro.lintcheck.core import check_paths
    assert check_paths([module], rules=UNIT_RULES) == []
