"""nm -> px -> nm round-trip: sub-pixel edge placement survives the grid.

OPC moves edges in 1 nm steps on grids of 4-16 nm/px, so the whole
pipeline is only as good as this round trip: ``rasterize`` (analytic
per-pixel area coverage, ``litho/raster.py``) down to the pixel domain,
``marching_squares`` (linear sub-pixel interpolation,
``litho/contour.py``) back up to nanometres.

Documented tolerance: for an isolated straight edge, linear
interpolation of the coverage samples places the recovered edge within
``pixel / 12`` of the drawn one (worst case at quarter-pixel offsets;
exact at 0- and half-pixel offsets).  The tests assert the round-trip
error stays below ``pixel / 10`` — the documented bound plus slack for
the corner cells — at every grid the flow ships (4, 8, 16 nm/px).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Rect
from repro.litho.contour import marching_squares
from repro.litho.raster import rasterize_rects

REGION = Rect(0.0, 0.0, 256.0, 256.0)

#: the documented round-trip bound, as a fraction of the pixel size
EDGE_TOLERANCE_PX = 0.1


def roundtrip_bbox(rect: Rect, pixel: float) -> Rect:
    """Drawn rect -> coverage raster -> 0.5-level contour -> bbox in nm."""
    grid = rasterize_rects([rect], REGION, pixel)
    # dark-feature convention: transmission drops below 0.5 inside
    field = 1.0 - grid.data
    contours = marching_squares(field, 0.5, x0=grid.x0, y0=grid.y0,
                                pixel=grid.pixel)
    assert len(contours) == 1, "an isolated rect must print as one contour"
    return contours[0].bbox


# integer-nm edges (the OPC move grid), >= 3 px wide so the two edges of
# the feature do not share coverage pixels, >= 2 px from the window edge
coords = st.integers(32, 96)
spans = st.integers(48, 128)


@pytest.mark.parametrize("pixel", [4.0, 8.0, 16.0])
@settings(max_examples=60, deadline=None)
@given(x=coords, y=coords, w=spans, h=spans)
def test_edge_placement_survives_roundtrip(pixel, x, y, w, h):
    rect = Rect(float(x), float(y), float(x + w), float(y + h))
    box = roundtrip_bbox(rect, pixel)
    tolerance = EDGE_TOLERANCE_PX * pixel
    assert abs(box.x0 - rect.x0) <= tolerance
    assert abs(box.x1 - rect.x1) <= tolerance
    assert abs(box.y0 - rect.y0) <= tolerance
    assert abs(box.y1 - rect.y1) <= tolerance


@pytest.mark.parametrize("pixel", [4.0, 8.0, 16.0])
def test_pixel_aligned_edges_are_exact(pixel):
    """Edges on pixel boundaries have 0/1 coverage: recovery is exact."""
    rect = Rect(4 * pixel, 4 * pixel, 10 * pixel, 9 * pixel)
    box = roundtrip_bbox(rect, pixel)
    assert box.x0 == pytest.approx(rect.x0, abs=1e-9)
    assert box.x1 == pytest.approx(rect.x1, abs=1e-9)
    assert box.y0 == pytest.approx(rect.y0, abs=1e-9)
    assert box.y1 == pytest.approx(rect.y1, abs=1e-9)


@pytest.mark.parametrize("pixel", [4.0, 8.0, 16.0])
def test_one_nm_opc_move_is_visible(pixel):
    """A 1 nm edge bias — the OPC move quantum — must shift the recovered
    edge, not vanish into the grid (the failure mode of binary
    rasterization)."""
    base = Rect(48.0, 48.0, 144.0, 144.0)
    biased = Rect(47.0, 48.0, 144.0, 144.0)
    x0_base = roundtrip_bbox(base, pixel).x0
    x0_biased = roundtrip_bbox(biased, pixel).x0
    moved = x0_base - x0_biased
    assert moved == pytest.approx(1.0, abs=2 * EDGE_TOLERANCE_PX * pixel)
    assert moved > 0.0
