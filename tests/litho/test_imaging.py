"""Tests for the Abbe and SOCS imaging engines."""

import dataclasses

import numpy as np
import pytest

from repro.geometry import Polygon, Rect
from repro.litho import OpticalModel, rasterize
from repro.pdk import LithoSettings


@pytest.fixture(scope="module")
def settings():
    # A lighter source grid keeps the Abbe reference fast in tests.
    return dataclasses.replace(LithoSettings(), source_grid=7)


@pytest.fixture(scope="module")
def model(settings):
    return OpticalModel(settings)


@pytest.fixture(scope="module")
def line_mask():
    line = Polygon.from_rect(Rect(-45, -400, 45, 400))
    return rasterize([line], Rect(-500, -500, 500, 500), 8.0)


class TestNormalization:
    def test_clear_field_socs(self, model):
        mask = rasterize([], Rect(0, 0, 400, 400), 8.0)
        image = model.aerial_image(mask, method="socs")
        assert image.intensity == pytest.approx(np.ones_like(image.intensity), abs=1e-9)

    def test_clear_field_abbe(self, model):
        mask = rasterize([], Rect(0, 0, 400, 400), 8.0)
        image = model.aerial_image(mask, method="abbe")
        assert image.intensity == pytest.approx(np.ones_like(image.intensity), abs=1e-9)

    def test_opaque_field_is_dark(self, model):
        mask = rasterize([Polygon.from_rect(Rect(-100, -100, 500, 500))],
                         Rect(0, 0, 400, 400), 8.0)
        image = model.aerial_image(mask)
        assert image.intensity.max() < 1e-6


class TestAbbeVsSocs:
    def test_agreement_in_focus(self, model, line_mask):
        abbe = model.aerial_image(line_mask, method="abbe")
        socs = model.aerial_image(line_mask, method="socs")
        assert np.abs(abbe.intensity - socs.intensity).max() < 5e-3

    def test_agreement_with_defocus(self, model, line_mask):
        abbe = model.aerial_image(line_mask, method="abbe", defocus_nm=150.0)
        socs = model.aerial_image(line_mask, method="socs", defocus_nm=150.0)
        assert np.abs(abbe.intensity - socs.intensity).max() < 5e-3

    def test_unknown_method_rejected(self, model, line_mask):
        with pytest.raises(ValueError):
            model.aerial_image(line_mask, method="kirchhoff")


class TestImageStructure:
    def test_line_creates_dark_channel(self, model, line_mask):
        image = model.aerial_image(line_mask)
        center = image.value_at(0.0, 0.0)
        far = image.value_at(420.0, 0.0)
        assert center < 0.3
        assert far > 0.7

    def test_symmetric_mask_symmetric_image(self, model, line_mask):
        image = model.aerial_image(line_mask)
        left = image.value_at(-120.0, 0.0)
        right = image.value_at(120.0, 0.0)
        assert left == pytest.approx(right, rel=1e-3)

    def test_defocus_degrades_contrast(self, model, line_mask):
        focus = model.aerial_image(line_mask)
        blur = model.aerial_image(line_mask, defocus_nm=250.0)
        contrast_f = focus.value_at(160, 0) - focus.value_at(0, 0)
        contrast_b = blur.value_at(160, 0) - blur.value_at(0, 0)
        assert contrast_b < contrast_f

    def test_corner_rounding_lowers_corner_contrast(self, model):
        square = Polygon.from_rect(Rect(-150, -150, 150, 150))
        mask = rasterize([square], Rect(-400, -400, 400, 400), 8.0)
        image = model.aerial_image(mask)
        edge_mid = image.value_at(150.0, 0.0)
        corner = image.value_at(150.0, 150.0)
        # The image at a convex corner is brighter than at an edge midpoint:
        # less chrome nearby, i.e. the printed shape pulls back (rounds).
        assert corner > edge_mid

    def test_kernel_count_bounded(self, model, line_mask):
        count = model.kernel_count(line_mask.nx, line_mask.ny, line_mask.pixel)
        assert 1 <= count <= model.max_kernels

    def test_kernel_cache_hit(self, model, line_mask):
        model.aerial_image(line_mask)
        cache_size = len(model._kernel_cache)
        model.aerial_image(line_mask)
        assert len(model._kernel_cache) == cache_size


class TestValueAtAndProfile:
    def test_value_at_matches_grid(self, model, line_mask):
        image = model.aerial_image(line_mask)
        xs, ys = line_mask.pixel_centers()
        assert image.value_at(xs[3], ys[5]) == pytest.approx(image.intensity[5, 3])

    def test_value_at_clamps_outside(self, model, line_mask):
        image = model.aerial_image(line_mask)
        assert image.value_at(-10000, -10000) == pytest.approx(image.intensity[0, 0])

    def test_profile_shape_and_length(self, model, line_mask):
        image = model.aerial_image(line_mask)
        distances, values = image.profile(-200, 0, 200, 0, samples=41)
        assert len(distances) == len(values) == 41
        assert distances[-1] == pytest.approx(400.0)
        assert values.min() < 0.3  # crosses the dark line
