"""Tests for NILS/MEEF metrics and attenuated-PSM imaging."""

import dataclasses

import numpy as np
import pytest

from repro.litho import (
    AerialImage,
    LithographySimulator,
    dose_latitude_percent,
    grating_meef,
    grating_nils,
    nils_at_edge,
)
from repro.pdk import make_tech_90nm


@pytest.fixture(scope="module")
def tech():
    return make_tech_90nm()


@pytest.fixture(scope="module")
def sim(tech):
    simulator = LithographySimulator.for_tech(tech)
    simulator.calibrate_to_anchor(tech.rules.gate_length, tech.rules.poly_pitch)
    return simulator


@pytest.fixture(scope="module")
def psm_sim(tech):
    settings = dataclasses.replace(tech.litho, mask_type="attpsm")
    simulator = LithographySimulator(settings)
    simulator.calibrate_to_anchor(tech.rules.gate_length, tech.rules.poly_pitch)
    return simulator


class TestNils:
    def test_analytic_exponential_edge(self):
        # I(x) = exp(s x): log slope is exactly s everywhere.
        xs = (np.arange(100) + 0.5) * 2.0
        data = np.tile(np.exp(0.01 * xs), (100, 1))
        image = AerialImage(0.0, 0.0, 2.0, data)
        assert nils_at_edge(image, 100.0, 100.0, 90.0) == pytest.approx(0.9, rel=0.05)

    def test_zero_on_flat_image(self):
        image = AerialImage(0, 0, 4.0, np.full((50, 50), 0.5))
        assert nils_at_edge(image, 100, 100, 90) == 0.0

    def test_grating_nils_positive(self, sim):
        assert grating_nils(sim, 90, 320) > 0.3

    def test_defocus_degrades_nils(self, sim):
        from repro.litho.resist import ProcessCondition

        focus = grating_nils(sim, 90, 320)
        blur = grating_nils(sim, 90, 320, condition=ProcessCondition(defocus_nm=250))
        assert blur < focus


class TestMeef:
    def test_meef_above_one_at_min_pitch(self, sim):
        assert grating_meef(sim, 90, 320) > 1.0

    def test_meef_relaxes_with_pitch_and_size(self, sim):
        tight = grating_meef(sim, 90, 320)
        relaxed = grating_meef(sim, 130, 520)
        assert relaxed < tight
        assert relaxed == pytest.approx(1.0, abs=0.4)


class TestDoseLatitude:
    def test_positive_latitude_at_anchor(self, sim):
        latitude = dose_latitude_percent(sim, 90, 320)
        assert 1.0 <= latitude <= 25.0


class TestAttPsm:
    def test_unknown_mask_type_rejected(self, tech):
        settings = dataclasses.replace(tech.litho, mask_type="chromeless")
        simulator = LithographySimulator(settings)
        with pytest.raises(ValueError):
            simulator.feature_amplitude

    def test_feature_amplitude_values(self, sim, psm_sim):
        assert sim.feature_amplitude == 0.0
        assert psm_sim.feature_amplitude == pytest.approx(-(0.06 ** 0.5))

    def test_psm_improves_nils(self, sim, psm_sim):
        binary = grating_nils(sim, 90, 320)
        psm = grating_nils(psm_sim, 90, 320)
        assert psm > 1.15 * binary

    def test_psm_still_prints_on_target(self, psm_sim):
        from repro.geometry import Polygon, Rect
        from repro.litho.simulator import measure_cd_on_cutline

        lines = [Polygon.from_rect(Rect(i * 320 - 45, -1500, i * 320 + 45, 1500))
                 for i in range(-3, 4)]
        latent = psm_sim.latent_image(lines, Rect(-160, -100, 160, 100))
        cd = measure_cd_on_cutline(latent, psm_sim.resist.threshold, -160, 160, 0.0)
        assert cd == pytest.approx(90, abs=1.5)
