"""Tests for analytic-coverage rasterization."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Polygon, Rect
from repro.litho import rasterize
from repro.litho.raster import _interval_coverage, rasterize_rects


class TestIntervalCoverage:
    def test_full_bins(self):
        cov = _interval_coverage(0, 30, 0, 10, 5)
        assert cov.tolist() == [1, 1, 1, 0, 0]

    def test_partial_edges(self):
        cov = _interval_coverage(3, 27, 0, 10, 3)
        assert cov == pytest.approx([0.7, 1.0, 0.7])

    def test_inside_single_bin(self):
        cov = _interval_coverage(2, 7, 0, 10, 2)
        assert cov == pytest.approx([0.5, 0.0])

    def test_clipped_to_grid(self):
        cov = _interval_coverage(-100, 15, 0, 10, 2)
        assert cov == pytest.approx([1.0, 0.5])

    def test_empty_interval(self):
        assert _interval_coverage(5, 5, 0, 10, 2).sum() == 0

    def test_boundary_aligned(self):
        cov = _interval_coverage(10, 20, 0, 10, 3)
        assert cov == pytest.approx([0.0, 1.0, 0.0])

    @given(st.floats(0, 90), st.floats(0, 90))
    def test_total_coverage_equals_length(self, a, span):
        cov = _interval_coverage(a, a + span, 0, 10, 10)
        expected = max(0.0, min(a + span, 100) - min(a, 100))
        assert cov.sum() * 10 == pytest.approx(expected, abs=1e-9)


class TestRasterize:
    def test_area_preserved(self):
        rect = Rect(13, 27, 113, 99)
        grid = rasterize([Polygon.from_rect(rect)], Rect(0, 0, 160, 160), 8.0)
        assert grid.data.sum() * 64 == pytest.approx(rect.area)

    def test_l_shape_area_preserved(self):
        ell = Polygon.from_xy([(0, 0), (100, 0), (100, 40), (40, 40), (40, 100), (0, 100)])
        grid = rasterize([ell], Rect(-8, -8, 120, 120), 8.0)
        assert grid.data.sum() * 64 == pytest.approx(ell.area)

    def test_pixel_aligned_rect_is_binary(self):
        grid = rasterize([Polygon.from_rect(Rect(8, 8, 24, 24))], Rect(0, 0, 32, 32), 8.0)
        assert set(np.unique(grid.data)) <= {0.0, 1.0}
        assert grid.data.sum() == 4

    def test_one_nm_edge_move_changes_coverage(self):
        region = Rect(0, 0, 64, 64)
        base = rasterize([Polygon.from_rect(Rect(16, 16, 48, 48))], region, 8.0)
        moved = rasterize([Polygon.from_rect(Rect(16, 16, 49, 48))], region, 8.0)
        delta = (moved.data - base.data).sum() * 64
        assert delta == pytest.approx(32.0)  # 1 nm x 32 nm of new area

    def test_outside_region_ignored(self):
        grid = rasterize([Polygon.from_rect(Rect(1000, 1000, 1100, 1100))],
                         Rect(0, 0, 64, 64), 8.0)
        assert grid.data.sum() == 0

    def test_partially_clipped(self):
        grid = rasterize([Polygon.from_rect(Rect(-50, 0, 32, 64))], Rect(0, 0, 64, 64), 8.0)
        assert grid.data.sum() * 64 == pytest.approx(32 * 64)

    def test_overlapping_shapes_clip_at_one(self):
        shape = Polygon.from_rect(Rect(8, 8, 24, 24))
        grid = rasterize([shape, shape], Rect(0, 0, 32, 32), 8.0)
        assert grid.data.max() == 1.0

    def test_transmission_polarity(self):
        grid = rasterize([Polygon.from_rect(Rect(0, 0, 32, 32))], Rect(0, 0, 32, 32), 8.0)
        dark = grid.transmission(background=1.0, feature=0.0)
        assert dark.max() == 0.0
        bright = grid.transmission(background=0.0, feature=1.0)
        assert bright.min() == 1.0

    def test_region_geometry(self):
        grid = rasterize([], Rect(10, 20, 90, 60), 8.0)
        assert grid.nx == 10
        assert grid.ny == 5
        assert grid.region == Rect(10, 20, 90, 60)
        xs, ys = grid.pixel_centers()
        assert xs[0] == 14.0
        assert ys[-1] == 56.0

    def test_bad_pixel_rejected(self):
        with pytest.raises(ValueError):
            rasterize([], Rect(0, 0, 10, 10), 0.0)

    def test_rasterize_rects_skips_degenerate(self):
        grid = rasterize_rects([Rect(0, 0, 0, 10), Rect(0, 0, 16, 16)],
                               Rect(0, 0, 32, 32), 8.0)
        assert grid.data.sum() * 64 == pytest.approx(256)

    @given(
        st.integers(0, 56), st.integers(0, 56), st.integers(1, 64), st.integers(1, 64),
    )
    def test_random_rect_area_preserved(self, x, y, w, h):
        rect = Rect(x, y, min(x + w, 120), min(y + h, 120))
        grid = rasterize([Polygon.from_rect(rect)], Rect(0, 0, 120, 120), 8.0)
        assert grid.data.sum() * 64 == pytest.approx(rect.area, rel=1e-9)
