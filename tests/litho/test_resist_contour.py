"""Tests for the resist model and marching-squares contours."""

import numpy as np
import pytest

from repro.geometry import Point
from repro.litho import AerialImage, ResistModel, marching_squares
from repro.litho.contour import contours_of_latent
from repro.litho.resist import ProcessCondition
from repro.pdk import LithoSettings


def flat_image(value, n=32, pixel=8.0):
    return AerialImage(0.0, 0.0, pixel, np.full((n, n), float(value)))


class TestProcessCondition:
    def test_nominal(self):
        c = ProcessCondition()
        assert c.dose == 1.0
        assert c.defocus_nm == 0.0

    def test_label(self):
        assert "dose=1.050" in ProcessCondition(dose=1.05, defocus_nm=100).label

    def test_bad_dose(self):
        with pytest.raises(ValueError):
            ProcessCondition(dose=0.0)


class TestResistModel:
    def test_from_settings(self):
        model = ResistModel.from_settings(LithoSettings())
        assert model.threshold == LithoSettings().resist_threshold

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ResistModel(threshold=0.0)
        with pytest.raises(ValueError):
            ResistModel(threshold=1.5)
        with pytest.raises(ValueError):
            ResistModel(threshold=0.3, diffusion_nm=-1)

    def test_dose_scales_latent(self):
        model = ResistModel(threshold=0.3, diffusion_nm=0.0)
        latent = model.latent_image(flat_image(0.5), dose=1.2)
        assert latent.intensity == pytest.approx(np.full((32, 32), 0.6))

    def test_develop_polarity_dark_feature(self):
        model = ResistModel(threshold=0.3, diffusion_nm=0.0)
        assert model.develop(flat_image(0.1)).all()       # dark -> resist stays
        assert not model.develop(flat_image(0.9)).any()   # bright -> cleared

    def test_develop_polarity_bright_feature(self):
        model = ResistModel(threshold=0.3, diffusion_nm=0.0, dark_feature=False)
        assert not model.develop(flat_image(0.1)).any()
        assert model.develop(flat_image(0.9)).all()

    def test_diffusion_smooths_step(self):
        data = np.zeros((32, 32))
        data[:, 16:] = 1.0
        image = AerialImage(0, 0, 8.0, data)
        sharp = ResistModel(threshold=0.5, diffusion_nm=0.0).latent_image(image)
        soft = ResistModel(threshold=0.5, diffusion_nm=24.0).latent_image(image)
        sharp_grad = np.abs(np.diff(sharp.intensity[16])).max()
        soft_grad = np.abs(np.diff(soft.intensity[16])).max()
        assert soft_grad < sharp_grad

    def test_diffusion_preserves_mean(self):
        rng = np.random.default_rng(1)
        image = AerialImage(0, 0, 8.0, rng.uniform(0.2, 0.8, (48, 48)))
        blurred = ResistModel(threshold=0.3, diffusion_nm=20.0).latent_image(image)
        assert blurred.intensity.mean() == pytest.approx(image.intensity.mean(), rel=0.02)


class TestMarchingSquares:
    def test_dark_square_yields_one_closed_contour(self):
        field = np.ones((40, 40))
        field[10:30, 10:30] = 0.0
        contours = marching_squares(field, 0.5, pixel=8.0)
        assert len(contours) == 1
        # 20x8 = 160 nm square; level midway between samples.
        assert contours[0].area == pytest.approx(160 * 160, rel=0.1)

    def test_contour_encloses_dark_region(self):
        field = np.ones((40, 40))
        field[10:30, 10:30] = 0.0
        (contour,) = marching_squares(field, 0.5, pixel=8.0)
        # Center of the dark block in nm (pixel centers at (i+0.5)*8).
        assert contour.contains_point(Point(20 * 8, 20 * 8))
        assert not contour.contains_point(Point(2 * 8, 2 * 8))

    def test_two_features_two_contours(self):
        field = np.ones((40, 60))
        field[10:30, 10:20] = 0.0
        field[10:30, 40:50] = 0.0
        contours = marching_squares(field, 0.5, pixel=8.0)
        assert len(contours) == 2

    def test_feature_touching_border_closes(self):
        field = np.ones((20, 20))
        field[0:10, 0:10] = 0.0
        contours = marching_squares(field, 0.5, pixel=8.0)
        assert len(contours) == 1
        assert contours[0].area > 0

    def test_subpixel_interpolation(self):
        # Linear ramp: crossing of 0.25 between samples 2 (0.2) and 3 (0.3)
        # sits exactly halfway.
        field = np.tile(np.arange(10) / 10.0, (10, 1))
        contours = marching_squares(field, 0.25, pixel=1.0, pad_value=1.0)
        xs = [p.x for c in contours for p in c.points]
        # The ramp crosses 0.25 halfway between samples 2 (0.2) and 3 (0.3),
        # i.e. at pixel-center coordinate (2.5 + 0.5) * 1.0 = 3.0.
        assert max(xs) == pytest.approx(3.0, abs=1e-6)

    def test_offset_and_pixel_scaling(self):
        field = np.ones((20, 20))
        field[5:15, 5:15] = 0.0
        (c1,) = marching_squares(field, 0.5, x0=0.0, y0=0.0, pixel=1.0)
        (c2,) = marching_squares(field, 0.5, x0=100.0, y0=50.0, pixel=2.0)
        assert c2.area == pytest.approx(4 * c1.area)
        assert c2.bbox.x0 == pytest.approx(100 + 2 * c1.bbox.x0)

    def test_flat_field_no_contours(self):
        assert marching_squares(np.ones((16, 16)), 0.5) == []

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            marching_squares(np.ones(16), 0.5)

    def test_saddle_cell_handled(self):
        # Checkerboard corner values create the ambiguous cases.
        field = np.ones((3, 3))
        field[0, 0] = field[1, 1] = 0.0
        field[2, 2] = 0.0
        contours = marching_squares(field, 0.5, pixel=10.0)
        assert all(c.area > 0 for c in contours)

    def test_contours_of_latent_uses_geometry(self):
        field = np.ones((30, 30))
        field[10:20, 10:20] = 0.0
        latent = AerialImage(500.0, 600.0, 4.0, field)
        contours = contours_of_latent(latent, 0.5)
        assert len(contours) == 1
        assert contours[0].bbox.x0 > 500.0
