"""Scale-aware litho sharding: grid partition, planning, stitching,
and serial-vs-parallel bit-identity."""

import pytest

from repro.cells import build_library
from repro.circuits import inverter_chain
from repro.flow import ParallelExecutor
from repro.geometry import Rect
from repro.litho import (
    DEFAULT_MAX_SHARD_PX,
    LithographySimulator,
    plan_shard_contours,
    plan_shard_grid,
    shard_contour_chunk,
    stitched_printed_contours,
)
from repro.litho.resist import NOMINAL, ProcessCondition
from repro.metrology import plan_metrology_shards
from repro.metrology.gate_cd import measure_tile_chunk
from repro.pdk import Layers, make_tech_90nm
from repro.place import assemble_layout, instance_gate_rects, place_rows
from repro.place.assembler import TOP_CELL


@pytest.fixture(scope="module")
def tech():
    return make_tech_90nm()


@pytest.fixture(scope="module")
def sim(tech):
    simulator = LithographySimulator.for_tech(tech)
    simulator.calibrate_to_anchor(tech.rules.gate_length, tech.rules.poly_pitch)
    return simulator


@pytest.fixture(scope="module")
def lib(tech):
    return build_library(tech)


@pytest.fixture(scope="module")
def placed_chain(sim, lib):
    netlist = inverter_chain(6)
    placement = place_rows(netlist, lib)
    layout = assemble_layout(netlist, lib, placement)
    polys = layout.flat_polygons(TOP_CELL, Layers.POLY)
    rects = instance_gate_rects(netlist, lib, placement)
    return polys, rects


class TestShardGrid:
    def test_plan_respects_min_count(self, sim):
        region = Rect(0, 0, 20000, 10000)
        grid = plan_shard_grid(sim, region, shards=5)
        assert grid.count >= 5
        # wider region splits along x first
        assert grid.nx >= grid.ny

    def test_windows_fit_pixel_cap(self, sim):
        region = Rect(0, 0, 60000, 60000)
        grid = plan_shard_grid(sim, region, shards=1)
        pixel = sim.settings.pixel_nm
        for index in range(grid.count):
            window = grid.interior(index).expanded(sim.ambit)
            assert window.width / pixel <= DEFAULT_MAX_SHARD_PX
            assert window.height / pixel <= DEFAULT_MAX_SHARD_PX

    def test_interiors_partition_region(self, sim):
        grid = plan_shard_grid(sim, Rect(0, 0, 9000, 7000), shards=6)
        area = sum(grid.interior(i).area for i in range(grid.count))
        assert area == pytest.approx(9000 * 7000)

    def test_locate_is_a_partition(self, sim):
        grid = plan_shard_grid(sim, Rect(0, 0, 9000, 7000), shards=4)
        # every probe point (inside or slightly outside) maps to exactly
        # one valid shard, including points on interior boundaries
        for x in [-10, 0.0, 1.0, 2250.0, 4500.0, 8999.0, 9010]:
            for y in [-10, 0.0, 3500.0, 6999.0, 7010]:
                index = grid.locate(x, y)
                assert 0 <= index < grid.count

    def test_locate_matches_interior(self, sim):
        grid = plan_shard_grid(sim, Rect(0, 0, 9000, 7000), shards=6)
        for index in range(grid.count):
            center = grid.interior(index).center
            assert grid.locate(center.x, center.y) == index

    def test_deterministic(self, sim):
        region = Rect(0, 0, 12000, 8000)
        a = plan_shard_grid(sim, region, shards=3)
        b = plan_shard_grid(sim, region, shards=3)
        assert a == b

    def test_condition_fn_resolved_at_plan_time(self, sim):
        marks = []

        def pick(interior):
            marks.append(interior)
            return ProcessCondition(dose=1.01, defocus_nm=0.0)

        grid = plan_shard_grid(sim, Rect(0, 0, 9000, 7000), shards=2,
                               condition_fn=pick)
        assert len(marks) == grid.count
        assert all(c.dose == 1.01 for c in grid.conditions)

    def test_bad_inputs(self, sim):
        with pytest.raises(ValueError):
            plan_shard_grid(sim, Rect(0, 0, 100, 100), shards=0)
        with pytest.raises(ValueError):
            # window too small to hold two ambit halos
            plan_shard_grid(sim, Rect(0, 0, 100, 100), max_shard_px=10)


class TestShardPlanning:
    def test_every_gate_in_exactly_one_task(self, sim, placed_chain):
        polys, rects = placed_chain
        tasks = plan_metrology_shards(sim, polys, rects, shards=4)
        seen = [key for task in tasks for key, _ in task.gate_rects]
        assert sorted(seen) == sorted(rects)

    def test_empty_rects(self, sim):
        assert plan_metrology_shards(sim, [], {}) == []

    def test_empty_shards_skipped(self, sim, placed_chain):
        polys, rects = placed_chain
        # huge region: most shards own no gate and produce no task
        region = Rect(0, 0, 40000, 40000)
        tasks = plan_metrology_shards(sim, polys, rects, shards=2,
                                      region=region)
        grid = plan_shard_grid(sim, region, shards=2)
        assert len(tasks) < grid.count

    def test_contour_tasks_skip_empty_windows(self, sim, placed_chain):
        polys, _ = placed_chain
        region = Rect(0, 0, 40000, 40000)
        grid = plan_shard_grid(sim, region, shards=2)
        tasks = plan_shard_contours(sim, polys, grid)
        assert 0 < len(tasks) < grid.count
        assert all(task.polygons for task in tasks)


class TestShardMeasurement:
    def test_shards_measure_all_gates(self, sim, placed_chain):
        polys, rects = placed_chain
        tasks = plan_metrology_shards(sim, polys, rects, shards=2)
        results = {}
        for chunk in measure_tile_chunk((sim, tasks)):
            results.update(chunk)
        assert set(results) == set(rects)
        assert all(m.printed for m in results.values())

    def test_serial_vs_process_bit_identical(self, sim, placed_chain):
        polys, rects = placed_chain
        tasks = plan_metrology_shards(sim, polys, rects, shards=2)
        serial = measure_tile_chunk((sim, tasks))
        executor = ParallelExecutor.from_jobs(2)
        parallel = executor.map_chunks(measure_tile_chunk, sim, tasks)
        flat_serial = {k: m for chunk in serial for k, m in chunk.items()}
        flat_parallel = {k: m for chunk in parallel for k, m in chunk.items()}
        assert set(flat_serial) == set(flat_parallel)
        for key, m in flat_serial.items():
            p = flat_parallel[key]
            assert m.slice_cds == p.slice_cds  # exact, not approx
            assert m.slice_positions == p.slice_positions


class TestStitchedContours:
    def test_stitch_is_exactly_once(self, sim, placed_chain):
        polys, rects = placed_chain
        region = Rect.bounding([r for r in rects.values()]).expanded(500)
        one = stitched_printed_contours(sim, polys, region, shards=1)
        many = stitched_printed_contours(sim, polys, region, shards=4)
        # same printed features either way: contour count is stable and
        # each feature's bbox center belongs to exactly one shard
        assert len(one) == len(many)
        centers = sorted((round(c.bbox.center.x, 3), round(c.bbox.center.y, 3))
                         for c in many)
        assert len(set(centers)) == len(centers)

    def test_worker_keeps_owned_or_boundary_band(self, sim, placed_chain):
        polys, rects = placed_chain
        region = Rect.bounding([r for r in rects.values()]).expanded(500)
        grid = plan_shard_grid(sim, region, shards=4)
        tasks = plan_shard_contours(sim, polys, grid)
        tol = sim.settings.pixel_nm
        for task, kept in zip(tasks, shard_contour_chunk((sim, tasks))):
            band = grid.interior(task.index).expanded(tol)
            for contour in kept:
                center = contour.bbox.center
                assert (grid.locate(center.x, center.y) == task.index
                        or band.contains_point(center))

    def test_boundary_straddler_kept_once(self, sim, placed_chain):
        # the 6-inverter chain has a gate whose printed center lands within
        # a pixel of the 4-shard boundary: the regression this guards is
        # that feature arriving twice (both windows claim it) or never
        # (each window defers to the other).
        polys, rects = placed_chain
        region = Rect.bounding([r for r in rects.values()]).expanded(500)
        many = stitched_printed_contours(sim, polys, region, shards=4)
        for rect in rects.values():
            # a poly contour covers the whole strip (both transistors of
            # the inverter): the one containing this gate's center
            owners = [c for c in many if c.bbox.contains_point(rect.center)]
            assert len(owners) == 1, rect
