"""Tests for the high-level lithography simulator."""


import pytest

from repro.geometry import Point, Polygon, Rect
from repro.litho import LithographySimulator
from repro.litho.resist import ProcessCondition
from repro.litho.simulator import cd_through_pitch, measure_cd_on_cutline
from repro.pdk import make_tech_90nm


@pytest.fixture(scope="module")
def tech():
    return make_tech_90nm()


@pytest.fixture(scope="module")
def sim(tech):
    simulator = LithographySimulator.for_tech(tech)
    simulator.calibrate_to_anchor(tech.rules.gate_length, tech.rules.poly_pitch)
    return simulator


def grating(width, pitch, n=7, length=3000.0):
    return [
        Polygon.from_rect(Rect(i * pitch - width / 2, -length / 2,
                               i * pitch + width / 2, length / 2))
        for i in range(-(n // 2), n // 2 + 1)
    ]


class TestCalibration:
    def test_anchor_prints_at_drawn_cd(self, sim, tech):
        lines = grating(90, 320)
        latent = sim.latent_image(lines, Rect(-160, -100, 160, 100))
        cd = measure_cd_on_cutline(latent, sim.resist.threshold, -160, 160, 0.0)
        assert cd == pytest.approx(90.0, abs=1.2)

    def test_threshold_in_physical_range(self, sim):
        assert 0.2 < sim.resist.threshold < 0.6


class TestProximity:
    def test_iso_dense_bias(self, sim):
        results = dict(cd_through_pitch(sim, 90, [320, 1600]))
        dense, iso = results[320], results[1600]
        assert dense == pytest.approx(90.0, abs=1.5)
        # Isolated lines print thinner than dense under annular illumination.
        assert iso < dense - 3.0

    def test_dose_changes_cd(self, sim):
        lines = grating(90, 320)
        region = Rect(-160, -100, 160, 100)
        over = sim.latent_image(lines, region, ProcessCondition(dose=1.08))
        under = sim.latent_image(lines, region, ProcessCondition(dose=0.92))
        cd_over = measure_cd_on_cutline(over, sim.resist.threshold, -160, 160, 0.0)
        cd_under = measure_cd_on_cutline(under, sim.resist.threshold, -160, 160, 0.0)
        # Higher dose clears more resist: dark lines shrink.
        assert cd_over < 90.0 < cd_under

    def test_defocus_shrinks_process_latitude(self, sim):
        lines = grating(90, 320)
        region = Rect(-160, -100, 160, 100)
        focus = sim.latent_image(lines, region)
        defocus = sim.latent_image(lines, region, ProcessCondition(defocus_nm=300.0))
        cd_f = measure_cd_on_cutline(focus, sim.resist.threshold, -160, 160, 0.0)
        cd_d = measure_cd_on_cutline(defocus, sim.resist.threshold, -160, 160, 0.0)
        assert cd_d != pytest.approx(cd_f, abs=0.5)

    def test_line_end_pullback(self, sim):
        # A line ending mid-window prints short of its drawn end.
        line = Polygon.from_rect(Rect(-45, -1000, 45, 0))
        latent = sim.latent_image([line], Rect(-200, -400, 200, 200))
        drawn_end = latent.value_at(0, -1.0)
        assert drawn_end > sim.resist.threshold  # already cleared at drawn end


class TestMeasureCd:
    def test_no_feature_returns_zero(self, sim):
        latent = sim.latent_image([], Rect(0, 0, 200, 200))
        assert measure_cd_on_cutline(latent, sim.resist.threshold, 0, 200, 100.0) == 0.0

    def test_measures_known_geometry(self, sim):
        # A very wide dark block: printed CD approaches the drawn width.
        block = Polygon.from_rect(Rect(-300, -2000, 300, 2000))
        latent = sim.latent_image([block], Rect(-500, -100, 500, 100))
        cd = measure_cd_on_cutline(latent, sim.resist.threshold, -500, 500, 0.0)
        assert cd == pytest.approx(600, abs=45)


class TestContoursAndTiles:
    def test_printed_contours_for_line(self, sim):
        lines = grating(90, 320, n=3, length=800)
        contours = sim.printed_contours(lines, Rect(-500, -450, 500, 450))
        assert len(contours) >= 3
        center = [c for c in contours if c.bbox.contains_point(Point(0, 0))]
        assert center

    def test_tiles_cover_region(self, sim):
        region = Rect(0, 0, 3000, 2000)
        tiles = list(sim.iter_tiles([], region))
        total = sum(t.interior.area for t in tiles)
        assert total == pytest.approx(region.area)

    def test_tiled_matches_untiled_cd(self, sim, tech):
        # Different window sizes wrap the periodic FFT field differently,
        # so raw intensities agree only to the stitching-noise level; the
        # quantity the flow consumes — the measured CD — must agree to the
        # ~1 nm model-error scale.
        lines = grating(90, 320, n=5, length=1600)
        region = Rect(-300, -300, 300, 300)
        reference = sim.latent_image(lines, region)
        cd_ref = measure_cd_on_cutline(reference, sim.resist.threshold, -160, 160, 0.0)
        small = LithographySimulator.for_tech(tech, max_tile_px=384)
        small.resist = sim.resist
        cds = []
        for tile in small.iter_tiles(lines, region):
            if tile.interior.contains_point(Point(0, 0)):
                cds.append(
                    measure_cd_on_cutline(tile.latent, sim.resist.threshold, -160, 160, 0.0)
                )
        assert cds
        assert cds[0] == pytest.approx(cd_ref, abs=2.5)

    def test_ambit_too_big_rejected(self, tech):
        sim = LithographySimulator.for_tech(tech, ambit=3000, max_tile_px=64)
        with pytest.raises(ValueError):
            list(sim.iter_tiles([], Rect(0, 0, 100, 100)))
