"""Tests for illumination sources and the projection pupil."""

import dataclasses

import numpy as np
import pytest

from repro.litho import Pupil, make_source
from repro.pdk import LithoSettings


def settings(**kwargs):
    return dataclasses.replace(LithoSettings(), **kwargs)


class TestSource:
    def test_weights_normalized(self):
        points = make_source(settings())
        assert sum(p.weight for p in points) == pytest.approx(1.0)

    def test_annular_excludes_center(self):
        points = make_source(settings(source_type="annular", sigma_inner=0.5,
                                      sigma_outer=0.85))
        radii = [np.hypot(p.sx, p.sy) for p in points]
        assert min(radii) >= 0.5 - 1e-9
        assert max(radii) <= 0.85 + 1e-9

    def test_conventional_includes_center(self):
        points = make_source(settings(source_type="conventional", sigma_outer=0.6,
                                      source_grid=11))
        assert any(p.sx == 0 and p.sy == 0 for p in points)

    def test_quadrupole_has_four_fold_symmetry(self):
        points = make_source(settings(source_type="quadrupole", sigma_inner=0.55,
                                      sigma_outer=0.85, source_grid=15))
        coords = {(round(p.sx, 9), round(p.sy, 9)) for p in points}
        assert coords == {(-x, y) for x, y in coords}
        assert coords == {(x, -y) for x, y in coords}
        assert all(abs(x) > 0.05 and abs(y) > 0.05 for x, y in coords)

    def test_single_point_source_is_coherent(self):
        points = make_source(settings(source_type="conventional", sigma_outer=0.3,
                                      source_grid=1))
        assert len(points) == 1
        assert points[0].weight == 1.0

    def test_bad_sigma_rejected(self):
        with pytest.raises(ValueError):
            make_source(settings(sigma_outer=0.0))
        with pytest.raises(ValueError):
            make_source(settings(source_type="annular", sigma_inner=0.9, sigma_outer=0.8))

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            make_source(settings(source_type="dipole_exotic"))

    def test_empty_discretization_rejected(self):
        # A razor-thin annulus that no grid point hits.
        with pytest.raises(ValueError):
            make_source(settings(source_type="annular", sigma_inner=0.8491,
                                 sigma_outer=0.8492, source_grid=3))


class TestPupil:
    def test_unit_amplitude_inside_cutoff(self):
        pupil = Pupil(settings())
        cutoff = pupil.cutoff
        values = pupil.evaluate(np.array([0.0, cutoff * 0.5]), np.array([0.0, 0.0]))
        assert np.allclose(np.abs(values), 1.0)

    def test_zero_outside_cutoff(self):
        pupil = Pupil(settings())
        value = pupil.evaluate(np.array([pupil.cutoff * 1.01]), np.array([0.0]))
        assert value[0] == 0.0

    def test_in_focus_is_real(self):
        pupil = Pupil(settings(), defocus_nm=0.0)
        values = pupil.evaluate(np.linspace(0, pupil.cutoff, 5), np.zeros(5))
        assert np.allclose(values.imag, 0.0)

    def test_defocus_adds_quadratic_phase(self):
        pupil = Pupil(settings(), defocus_nm=200.0)
        s = settings()
        f_edge = pupil.cutoff
        center = pupil.evaluate(np.array([0.0]), np.array([0.0]))[0]
        edge = pupil.evaluate(np.array([f_edge]), np.array([0.0]))[0]
        assert np.angle(center) == pytest.approx(0.0)
        expected = 2 * np.pi * 0.5 * 200.0 * s.numerical_aperture**2 / s.wavelength
        assert np.angle(edge) == pytest.approx(
            (expected + np.pi) % (2 * np.pi) - np.pi, abs=1e-9
        )

    def test_defocus_sign_symmetric_intensity(self):
        plus = Pupil(settings(), defocus_nm=150.0)
        minus = Pupil(settings(), defocus_nm=-150.0)
        f = np.linspace(-plus.cutoff, plus.cutoff, 9)
        assert np.allclose(plus.evaluate(f, 0 * f), np.conj(minus.evaluate(f, 0 * f)))

    def test_spherical_aberration_changes_phase(self):
        clean = Pupil(settings())
        aberrated = Pupil(settings(), zernike={"spherical": 0.05})
        f = np.array([clean.cutoff * 0.6])
        assert not np.allclose(clean.evaluate(f, np.array([0.0])),
                               aberrated.evaluate(f, np.array([0.0])))

    def test_astig_breaks_xy_symmetry(self):
        pupil = Pupil(settings(), zernike={"astig": 0.05})
        f = pupil.cutoff * 0.7
        vx = pupil.evaluate(np.array([f]), np.array([0.0]))[0]
        vy = pupil.evaluate(np.array([0.0]), np.array([f]))[0]
        assert not np.isclose(vx, vy)
