"""Tests for gate-CD extraction, statistics, and site selection."""

import numpy as np
import pytest

from repro.cells import build_library
from repro.circuits import inverter_chain
from repro.geometry import Rect
from repro.litho import AerialImage, LithographySimulator
from repro.metrology import (
    measure_gate_cds,
    measure_layout_gate_cds,
    select_sites,
    summarize_cds,
)
from repro.metrology.gate_cd import GateCdMeasurement, _span_containing_center
from repro.metrology.sites import sites_as_gate_rects
from repro.metrology.statistics import histogram_of_errors, systematic_random_split
from repro.pdk import Layers, make_tech_90nm
from repro.place import assemble_layout, instance_gate_rects, place_rows
from repro.place.assembler import TOP_CELL


@pytest.fixture(scope="module")
def tech():
    return make_tech_90nm()


@pytest.fixture(scope="module")
def sim(tech):
    simulator = LithographySimulator.for_tech(tech)
    simulator.calibrate_to_anchor(tech.rules.gate_length, tech.rules.poly_pitch)
    return simulator


@pytest.fixture(scope="module")
def lib(tech):
    return build_library(tech)


def synthetic_gate_image(cd=90.0, pixel=4.0, size=400, ramp=8.0):
    """A dark stripe of width ``cd`` centered at x=0, with linear edge
    profiles so the 0.5 level sits exactly at +-cd/2 under interpolation."""
    n = int(size / pixel)
    xs = (np.arange(n) + 0.5) * pixel - size / 2
    row = np.clip((np.abs(xs) - cd / 2) / ramp + 0.5, 0.0, 1.0)
    data = np.tile(row, (n, 1))
    return AerialImage(-size / 2, -size / 2, pixel, data)


class TestSpanAtCenter:
    def test_simple_span(self):
        positions = np.linspace(-100, 100, 201)
        values = np.where(np.abs(positions) <= 45, 0.0, 1.0)
        assert _span_containing_center(positions, values, 0.5, 0.0) == pytest.approx(90, abs=1)

    def test_ignores_neighbour_span(self):
        positions = np.linspace(-300, 300, 601)
        values = np.ones_like(positions)
        values[np.abs(positions) <= 45] = 0.0            # center feature
        values[np.abs(positions - 200) <= 80] = 0.0      # fat neighbour
        cd = _span_containing_center(positions, values, 0.5, 0.0)
        assert cd == pytest.approx(90, abs=1)

    def test_open_returns_zero(self):
        positions = np.linspace(-100, 100, 201)
        assert _span_containing_center(positions, np.ones(201), 0.5, 0.0) == 0.0


class TestMeasureGateCds:
    def test_perfect_stripe(self):
        latent = synthetic_gate_image(cd=90)
        rects = {"g": Rect(-45, -100, 45, 100)}
        (m,) = measure_gate_cds(latent, 0.5, rects).values()
        assert m.printed
        assert m.mean_cd == pytest.approx(90, abs=1)
        assert m.mid_cd == pytest.approx(90, abs=1)
        assert m.cd_range < 1e-9
        assert m.error == pytest.approx(0, abs=1)

    def test_slice_count(self):
        latent = synthetic_gate_image()
        rects = {"g": Rect(-45, -100, 45, 100)}
        (m,) = measure_gate_cds(latent, 0.5, rects, n_slices=7).values()
        assert len(m.slice_cds) == 7
        assert len(m.slice_positions) == 7

    def test_horizontal_gate_orientation(self):
        latent = synthetic_gate_image(cd=90)
        # Wide-short rect: channel along y. Build a rotated image.
        data = latent.intensity.T.copy()
        rotated = AerialImage(latent.x0, latent.y0, latent.pixel, data)
        rects = {"g": Rect(-100, -45, 100, 45)}
        (m,) = measure_gate_cds(rotated, 0.5, rects).values()
        assert m.mean_cd == pytest.approx(90, abs=1)

    def test_open_gate_not_printed(self):
        latent = AerialImage(-200, -200, 4.0, np.ones((100, 100)))
        rects = {"g": Rect(-45, -100, 45, 100)}
        (m,) = measure_gate_cds(latent, 0.5, rects).values()
        assert not m.printed
        assert m.min_cd == 0.0

    def test_real_inverter_gate(self, sim, lib, tech):
        inv = lib["INV_X1"]
        polys = inv.layout.polygons_on(Layers.POLY)
        rects = {("inv", t.name): t.gate_rect for t in inv.transistors}
        region = Rect.bounding([r for r in rects.values()]).expanded(100)
        latent = sim.latent_image(polys, region)
        results = measure_gate_cds(latent, sim.resist.threshold, rects)
        for m in results.values():
            assert m.printed
            assert 70 < m.mean_cd < 110  # uncorrected: biased but printing

    def test_slice_widths_sum_to_gate_width(self):
        latent = synthetic_gate_image()
        rects = {"g": Rect(-45, -100, 45, 100)}
        (m,) = measure_gate_cds(latent, 0.5, rects, n_slices=5).values()
        assert sum(m.slice_widths()) == pytest.approx(200)


class TestLayoutMetrology:
    def test_chain_measured_via_tiles(self, sim, lib, tech):
        netlist = inverter_chain(4)
        placement = place_rows(netlist, lib)
        layout = assemble_layout(netlist, lib, placement)
        polys = layout.flat_polygons(TOP_CELL, Layers.POLY)
        rects = instance_gate_rects(netlist, lib, placement)
        results = measure_layout_gate_cds(sim, polys, rects)
        assert set(results) == set(rects)
        for m in results.values():
            assert m.printed

    def test_empty_input(self, sim):
        assert measure_layout_gate_cds(sim, [], {}) == {}


class TestStatistics:
    def make_measurement(self, error):
        m = GateCdMeasurement(gate_rect=Rect(0, 0, 90, 400), drawn_cd=90)
        m.slice_positions = [200.0]
        m.slice_cds = [90.0 + error]
        return m

    def test_summarize(self):
        measurements = {i: self.make_measurement(e) for i, e in enumerate([-2, 0, 2])}
        stats = summarize_cds(measurements)
        assert stats.count == 3
        assert stats.mean == pytest.approx(0)
        assert stats.sigma == pytest.approx(np.std([-2, 0, 2]))
        assert stats.range == 4
        assert "n=3" in str(stats)

    def test_summarize_skips_unprinted(self):
        bad = GateCdMeasurement(gate_rect=Rect(0, 0, 90, 400), drawn_cd=90)
        bad.slice_positions = [200.0]
        bad.slice_cds = [0.0]
        stats = summarize_cds({"ok": self.make_measurement(1), "bad": bad})
        assert stats.count == 1

    def test_empty_stats(self):
        stats = summarize_cds({})
        assert stats.count == 0
        assert np.isnan(stats.mean)

    def test_histogram(self):
        measurements = {i: self.make_measurement(e) for i, e in enumerate([-1.2, 0.1, 0.3, 2.4])}
        bins = histogram_of_errors(measurements, bin_width=1.0)
        assert sum(count for _, count in bins) == 4

    def test_systematic_random_split(self):
        groups = {
            "ctxA": [3.0, 3.1, 2.9],   # tight around +3
            "ctxB": [-3.0, -2.9, -3.1],
        }
        sigma_sys, sigma_rand = systematic_random_split(groups)
        assert sigma_sys == pytest.approx(3.0, abs=0.1)
        assert sigma_rand < 0.2

    def test_split_empty(self):
        sigma_sys, sigma_rand = systematic_random_split({})
        assert np.isnan(sigma_sys)


class TestSites:
    def rects(self):
        return {
            ("g1", "MN0"): Rect(0, 0, 90, 400),
            ("g1", "MP0"): Rect(0, 600, 90, 1000),
            ("g2", "MN0"): Rect(500, 0, 590, 400),
        }

    def test_all_sites_default(self):
        sites = select_sites(self.rects())
        assert len(sites) == 3
        assert all(s.tag == "standard" for s in sites)

    def test_critical_tagging(self):
        sites = select_sites(self.rects(), critical_gates={"g1"})
        tags = {s.key: s.tag for s in sites}
        assert tags[("g1", "MN0")] == "critical"
        assert tags[("g2", "MN0")] == "standard"

    def test_critical_only(self):
        sites = select_sites(self.rects(), critical_gates={"g2"}, critical_only=True)
        assert [s.gate_name for s in sites] == ["g2"]

    def test_sampling_keeps_critical(self):
        sites = select_sites(self.rects(), critical_gates={"g2"}, sample_fraction=0.0)
        assert [s.gate_name for s in sites] == ["g2"]

    def test_sampling_deterministic(self):
        a = select_sites(self.rects(), sample_fraction=0.5, seed=42)
        b = select_sites(self.rects(), sample_fraction=0.5, seed=42)
        assert [s.key for s in a] == [s.key for s in b]

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            select_sites(self.rects(), sample_fraction=1.5)

    def test_roundtrip_to_rects(self):
        sites = select_sites(self.rects())
        assert sites_as_gate_rects(sites) == self.rects()
