"""The vectorized ``_span_containing_center`` is bit-identical to the
per-segment python loop it replaced.

Elementwise float64 arithmetic is IEEE exactly rounded, and the
vectorized form evaluates the same expressions per crossing segment in
the same order, so identity here is exact (``==``), not approximate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrology.gate_cd import _span_containing_center


def _span_loop_reference(positions, values, threshold, center):
    """The pre-vectorization implementation, verbatim."""
    center_value = np.interp(center, positions, values)
    if center_value >= threshold:
        return 0.0
    deltas = values - threshold
    crossings = []
    for k in range(len(values) - 1):
        if deltas[k] * deltas[k + 1] <= 0.0 and values[k] != values[k + 1]:
            t = (threshold - values[k]) / (values[k + 1] - values[k])
            crossings.append(positions[k] + t * (positions[k + 1] - positions[k]))
    left = [c for c in crossings if c <= center]
    right = [c for c in crossings if c >= center]
    left_edge = max(left) if left else positions[0]
    right_edge = min(right) if right else positions[-1]
    return float(right_edge - left_edge)


def _dip_profile(rng, samples):
    """Aerial-image-like cutline: bright field with gaussian dark dips."""
    positions = np.linspace(-120.0, 120.0, samples)
    values = np.ones(samples)
    for _ in range(rng.integers(1, 4)):
        mu = rng.uniform(-80.0, 80.0)
        sigma = rng.uniform(8.0, 40.0)
        depth = rng.uniform(0.4, 1.1)
        values -= depth * np.exp(-((positions - mu) ** 2) / (2 * sigma**2))
    return positions, values


class TestBitIdentity:
    def test_randomized_profiles_match_exactly(self):
        rng = np.random.default_rng(20260808)
        for _ in range(500):
            positions, values = _dip_profile(rng, int(rng.integers(8, 160)))
            threshold = rng.uniform(0.1, 0.9)
            center = rng.uniform(positions[0], positions[-1])
            expected = _span_loop_reference(positions, values, threshold, center)
            got = _span_containing_center(positions, values, threshold, center)
            assert got == expected  # bit-identical, not approx

    def test_cleared_center_is_zero(self):
        positions = np.linspace(0.0, 10.0, 32)
        values = np.ones(32)
        assert _span_containing_center(positions, values, 0.5, 5.0) == 0.0

    def test_plateau_at_threshold_matches_loop(self):
        # v0 == v1 segments sitting exactly on the threshold: the loop's
        # `values[k] != values[k+1]` guard must be reproduced exactly.
        positions = np.arange(10.0)
        values = np.array([1.0, 0.5, 0.5, 0.2, 0.2, 0.2, 0.5, 0.5, 1.0, 1.0])
        for center in (3.0, 4.0, 4.5):
            assert _span_containing_center(positions, values, 0.5, center) == \
                _span_loop_reference(positions, values, 0.5, center)

    def test_no_crossing_spans_full_window(self):
        positions = np.linspace(0.0, 10.0, 16)
        values = np.zeros(16)
        got = _span_containing_center(positions, values, 0.5, 5.0)
        assert got == _span_loop_reference(positions, values, 0.5, 5.0)
        assert got == pytest.approx(10.0)

    def test_exact_threshold_touch_matches_loop(self):
        # a sample landing exactly on the threshold makes delta == 0 in
        # two adjacent segments; both spell one crossing each in the loop
        positions = np.arange(6.0)
        values = np.array([1.0, 0.5, 0.1, 0.1, 0.5, 1.0])
        got = _span_containing_center(positions, values, 0.5, 2.5)
        assert got == _span_loop_reference(positions, values, 0.5, 2.5)
