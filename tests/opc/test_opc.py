"""Tests for rule-based and model-based OPC, SRAF, MRC, and ORC."""

import pytest

from repro.geometry import Point, Polygon, Rect
from repro.litho import LithographySimulator
from repro.litho.simulator import measure_cd_on_cutline
from repro.opc import (
    ModelOpcRecipe,
    RuleOpcRecipe,
    apply_model_opc,
    apply_rule_opc,
    check_mrc,
    insert_srafs,
    run_orc,
)
from repro.opc.rules import _NeighbourField
from repro.geometry import Fragment, FragmentKind
from repro.pdk import make_tech_90nm


@pytest.fixture(scope="module")
def tech():
    return make_tech_90nm()


@pytest.fixture(scope="module")
def sim(tech):
    simulator = LithographySimulator.for_tech(tech)
    simulator.calibrate_to_anchor(tech.rules.gate_length, tech.rules.poly_pitch)
    return simulator


def iso_line(width=90.0, length=1200.0):
    return Polygon.from_rect(Rect(-width / 2, -length / 2, width / 2, length / 2))


class TestNeighbourField:
    def test_spacing_between_parallel_lines(self):
        a = Polygon.from_rect(Rect(0, 0, 90, 600))
        b = Polygon.from_rect(Rect(320, 0, 410, 600))
        field = _NeighbourField([a, b], max_search=2000)
        # Fragment on the right edge of a (CCW: upward) -> outward normal +x.
        frag = Fragment(Point(90, 200), Point(90, 400), FragmentKind.NORMAL)
        assert field.spacing_along_normal(frag, exclude=0) == pytest.approx(230)

    def test_isolated_edge_capped(self):
        a = Polygon.from_rect(Rect(0, 0, 90, 600))
        field = _NeighbourField([a], max_search=2000)
        frag = Fragment(Point(90, 400), Point(90, 200), FragmentKind.NORMAL)
        assert field.spacing_along_normal(frag, exclude=0) == 2000

    def test_own_polygon_excluded(self):
        a = Polygon.from_rect(Rect(0, 0, 90, 600))
        field = _NeighbourField([a], max_search=500)
        # Fragment facing its own other edge must not see itself.
        frag = Fragment(Point(0, 200), Point(0, 400), FragmentKind.NORMAL)
        assert field.spacing_along_normal(frag, exclude=0) == 500


class TestRuleOpc:
    def test_bias_grows_polygon(self):
        line = iso_line()
        (corrected,) = apply_rule_opc([line])
        assert corrected.area > line.area
        assert corrected.bbox.contains_rect(line.bbox)

    def test_line_end_extension_applied(self):
        line = iso_line(length=1200)
        recipe = RuleOpcRecipe(line_end_extension=25.0)
        (corrected,) = apply_rule_opc([line], recipe)
        assert corrected.bbox.y1 == pytest.approx(600 + 25)
        assert corrected.bbox.y0 == pytest.approx(-600 - 25)

    def test_dense_edges_get_less_bias_than_iso(self):
        lines = [Polygon.from_rect(Rect(i * 320 - 45, -600, i * 320 + 45, 600))
                 for i in range(-1, 2)]
        corrected = apply_rule_opc(lines)
        center = corrected[1]
        # Facing edges dense (bias 1), all corrected widths >= drawn.
        assert center.bbox.width == pytest.approx(92, abs=1)
        (iso,) = apply_rule_opc([iso_line()])
        assert iso.bbox.width > center.bbox.width

    def test_context_affects_spacing_without_being_corrected(self):
        target = iso_line()
        neighbour = Polygon.from_rect(Rect(135, -600, 225, 600))
        corrected = apply_rule_opc([target], context=[neighbour])
        assert len(corrected) == 1
        # Right edge sees the neighbour (dense bias 1), left edge is iso.
        assert corrected[0].bbox.x1 - 45 < 45 - corrected[0].bbox.x0

    def test_improves_printed_cd(self, sim, tech):
        line = iso_line()
        region = Rect(-200, -100, 200, 100)
        raw = sim.latent_image([line], region)
        cd_raw = measure_cd_on_cutline(raw, sim.resist.threshold, -200, 200, 0.0)
        corrected = apply_rule_opc([line])
        fixed = sim.latent_image(corrected, region)
        cd_fixed = measure_cd_on_cutline(fixed, sim.resist.threshold, -200, 200, 0.0)
        assert abs(cd_fixed - 90) < abs(cd_raw - 90)


class TestModelOpc:
    def test_epe_decreases_monotonically_at_start(self, sim):
        result = apply_model_opc(sim, [iso_line()])
        rms = [r for r, _ in result.epe_history]
        assert rms[0] > rms[-1]
        assert rms[1] < rms[0]

    def test_beats_rule_opc(self, sim):
        line = iso_line()
        rule = run_orc(sim, apply_rule_opc([line]), [line])
        model = run_orc(sim, apply_model_opc(sim, [line]).polygons, [line])
        assert model.rms_epe < rule.rms_epe

    def test_gate_cd_on_target_after_correction(self, sim):
        line = iso_line(length=1600)
        result = apply_model_opc(sim, [line])
        latent = sim.latent_image(result.polygons, Rect(-200, -100, 200, 100))
        cd = measure_cd_on_cutline(latent, sim.resist.threshold, -200, 200, 0.0)
        assert cd == pytest.approx(90, abs=2.0)

    def test_respects_max_total_move(self, sim):
        recipe = ModelOpcRecipe(iterations=4, max_total_move=10.0)
        result = apply_model_opc(sim, [iso_line()], recipe=recipe)
        bbox = result.polygons[0].bbox
        assert bbox.width <= 90 + 2 * 10 + 1e-6
        assert bbox.height <= 1200 + 2 * 10 + 1e-6

    def test_early_stop_on_target(self, sim):
        # A loose 50 nm target: the first measurement (~65 nm worst EPE)
        # still moves, the second (~35 nm) stops the loop.
        recipe = ModelOpcRecipe(iterations=20, target_epe=50.0)
        result = apply_model_opc(sim, [iso_line()], recipe=recipe)
        assert result.iterations_run == 2

    def test_empty_targets(self, sim):
        result = apply_model_opc(sim, [])
        assert result.polygons == []
        assert result.iterations_run == 0

    def test_output_on_manufacturing_grid(self, sim):
        result = apply_model_opc(sim, [iso_line()])
        for p in result.polygons:
            for point in p.points:
                assert point.x == pytest.approx(round(point.x))
                assert point.y == pytest.approx(round(point.y))


class TestSraf:
    def test_iso_line_gets_bars_both_sides(self):
        bars = insert_srafs([iso_line()])
        assert len(bars) == 2
        xs = sorted(b.bbox.center.x for b in bars)
        assert xs[0] < -45 and xs[1] > 45

    def test_dense_lines_get_no_bars_between(self):
        lines = [Polygon.from_rect(Rect(i * 320 - 45, -600, i * 320 + 45, 600))
                 for i in range(3)]
        bars = insert_srafs(lines)
        for bar in bars:
            assert not (0 < bar.bbox.center.x < 640)

    def test_bars_do_not_print(self, sim):
        line = iso_line()
        bars = insert_srafs([line])
        latent = sim.latent_image([line] + bars, Rect(-600, -300, 600, 300))
        for bar in bars:
            c = bar.bbox.center
            assert latent.value_at(c.x, c.y) > sim.resist.threshold

    def test_bars_respect_clearance(self):
        lines = [iso_line(), Polygon.from_rect(Rect(700, -600, 790, 600))]
        bars = insert_srafs(lines)
        for bar in bars:
            for line in lines:
                gap = bar.bbox.expanded(99.0)
                assert not gap.overlaps(line.bbox)

    def test_short_edges_skipped(self):
        stub = Polygon.from_rect(Rect(0, 0, 90, 150))
        assert insert_srafs([stub]) == []


class TestMrc:
    def test_clean_mask_passes(self):
        assert check_mrc([iso_line()]) == []

    def test_sliver_flagged(self):
        sliver = Polygon.from_rect(Rect(0, 0, 30, 600))
        violations = check_mrc([sliver])
        assert violations and violations[0].rule == "mrc.width"

    def test_narrow_gap_flagged(self):
        a = Polygon.from_rect(Rect(0, 0, 90, 600))
        b = Polygon.from_rect(Rect(120, 0, 210, 600))
        violations = check_mrc([a, b])
        assert any(v.rule == "mrc.space" for v in violations)

    def test_sraf_width_floor(self):
        bar = Polygon.from_rect(Rect(0, 0, 20, 400))
        violations = check_mrc([iso_line(width=90)], srafs=[bar])
        assert any(v.rule == "mrc.sraf_width" for v in violations)


class TestOrc:
    def test_uncorrected_iso_line_fails(self, sim):
        line = iso_line()
        report = run_orc(sim, [line], [line])
        assert not report.clean
        assert report.rms_epe > 5

    def test_corrected_line_mostly_clean(self, sim):
        line = iso_line()
        corrected = apply_model_opc(sim, [line]).polygons
        report = run_orc(sim, corrected, [line])
        assert report.rms_epe < 6
        assert not report.violations_of("open")

    def test_pinch_detected_for_undersized_mask(self, sim):
        target = iso_line(width=90)
        skinny = iso_line(width=40)  # mask far too thin: feature necks away
        report = run_orc(sim, [skinny], [target])
        kinds = {v.kind for v in report.violations}
        assert "pinch" in kinds or "open" in kinds

    def test_bridge_detected_between_close_masks(self, sim):
        # Two lines drawn apart but masks drawn so wide they merge.
        t1 = Polygon.from_rect(Rect(-135, -600, -45, 600))
        t2 = Polygon.from_rect(Rect(45, -600, 135, 600))
        m1 = Polygon.from_rect(Rect(-160, -600, -10, 600))
        m2 = Polygon.from_rect(Rect(10, -600, 160, 600))
        report = run_orc(sim, [m1, m2], [t1, t2])
        assert report.violations_of("bridge")

    def test_empty_targets(self, sim):
        report = run_orc(sim, [], [])
        assert report.clean

    def test_report_stats(self, sim):
        line = iso_line()
        report = run_orc(sim, [line], [line])
        assert report.max_epe >= report.rms_epe > 0
        assert len(report.epes) > 4
