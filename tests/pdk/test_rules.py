"""Tests for design rules and the geometric DRC."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Polygon, Rect
from repro.pdk import DesignRules, Layers, check_min_space, check_min_width
from repro.pdk.rules import check_enclosure, polygon_min_width, run_drc


def rect_poly(x0, y0, x1, y1):
    return Polygon.from_rect(Rect(x0, y0, x1, y1))


class TestPolygonMinWidth:
    def test_rectangle(self):
        assert polygon_min_width(rect_poly(0, 0, 90, 600)) == 90

    def test_l_shape_arm_width(self):
        ell = Polygon.from_xy([(0, 0), (400, 0), (400, 100), (100, 100), (100, 400), (0, 400)])
        assert polygon_min_width(ell) == 100

    def test_step_does_not_create_false_thinness(self):
        # A tall block with a small step; narrowest true chord is 300.
        stepped = Polygon.from_xy([(0, 0), (500, 0), (500, 100), (600, 100), (600, 400), (0, 400)])
        assert polygon_min_width(stepped) == pytest.approx(300)

    def test_plus_sign_arm(self):
        plus = Polygon.from_xy(
            [(100, 0), (200, 0), (200, 100), (300, 100), (300, 200), (200, 200),
             (200, 300), (100, 300), (100, 200), (0, 200), (0, 100), (100, 100)]
        )
        assert polygon_min_width(plus) == 100


class TestMinWidth:
    def test_passes_at_rule(self):
        assert check_min_width([rect_poly(0, 0, 90, 600)], 90) == []

    def test_fails_below_rule(self):
        violations = check_min_width([rect_poly(0, 0, 80, 600)], 90)
        assert len(violations) == 1
        assert violations[0].actual == 80
        assert violations[0].required == 90
        assert "min_width" in str(violations[0])

    @given(st.integers(10, 200), st.integers(10, 200))
    def test_flags_iff_below(self, w, h):
        violations = check_min_width([rect_poly(0, 0, w, h)], 90)
        assert bool(violations) == (min(w, h) < 90)


class TestMinSpace:
    def test_passes_when_far(self):
        polys = [rect_poly(0, 0, 90, 600), rect_poly(240, 0, 330, 600)]
        assert check_min_space(polys, 150) == []

    def test_fails_when_close(self):
        polys = [rect_poly(0, 0, 90, 600), rect_poly(180, 0, 270, 600)]
        violations = check_min_space(polys, 150)
        assert len(violations) == 1
        assert violations[0].actual == 90

    def test_touching_shapes_exempt(self):
        polys = [rect_poly(0, 0, 100, 100), rect_poly(100, 0, 200, 100)]
        assert check_min_space(polys, 150) == []

    def test_diagonal_distance_used(self):
        polys = [rect_poly(0, 0, 100, 100), rect_poly(130, 130, 200, 200)]
        violations = check_min_space(polys, 60)
        assert len(violations) == 1
        assert violations[0].actual == pytest.approx((30**2 + 30**2) ** 0.5)

    def test_concave_shapes_measure_inner_gap(self):
        u = Polygon.from_xy([(0, 0), (300, 0), (300, 300), (200, 300), (200, 100),
                             (100, 100), (100, 300), (0, 300)])
        pin = rect_poly(130, 180, 170, 300)
        violations = check_min_space([u, pin], 60)
        assert len(violations) == 1
        assert violations[0].actual == pytest.approx(30)

    @given(st.integers(0, 400))
    def test_flags_iff_gap_below(self, gap):
        polys = [rect_poly(0, 0, 90, 600), rect_poly(90 + gap, 0, 180 + gap, 600)]
        violations = check_min_space(polys, 150)
        assert bool(violations) == (0 < gap < 150)


class TestEnclosure:
    def test_enclosed_ok(self):
        inner = [rect_poly(40, 40, 150, 150)]
        outer = [rect_poly(0, 0, 190, 190)]
        assert check_enclosure(inner, outer, 40) == []

    def test_insufficient_margin(self):
        inner = [rect_poly(10, 40, 120, 150)]
        outer = [rect_poly(0, 0, 190, 190)]
        violations = check_enclosure(inner, outer, 40)
        assert len(violations) == 1
        assert violations[0].actual == 10

    def test_orphan_inner_flagged(self):
        violations = check_enclosure([rect_poly(0, 0, 10, 10)], [], 5)
        assert len(violations) == 1


class TestRunDrc:
    def test_clean_layout(self):
        shapes = {
            Layers.POLY: [rect_poly(0, 0, 90, 600), rect_poly(240, 0, 330, 600)],
            Layers.METAL1: [rect_poly(0, 0, 120, 1000)],
        }
        assert run_drc(shapes, DesignRules()) == []

    def test_dirty_layout_reports_layer_names(self):
        shapes = {Layers.POLY: [rect_poly(0, 0, 50, 600)]}
        violations = run_drc(shapes, DesignRules())
        assert len(violations) == 1
        assert violations[0].rule == "POLY.width"

    def test_default_rule_tables_populated(self):
        rules = DesignRules()
        assert rules.min_width[Layers.POLY] == rules.poly_width
        assert rules.min_space[Layers.METAL1] == rules.metal1_space
