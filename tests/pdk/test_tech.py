"""Tests for technology constants and layer registry."""

import pytest

from repro.pdk import Layers, make_tech_90nm


class TestLayers:
    def test_names(self):
        assert Layers.name_of(Layers.POLY) == "POLY"
        assert Layers.name_of(Layers.METAL1) == "METAL1"
        assert Layers.name_of((99, 7)) == "L99D7"

    def test_variants(self):
        assert Layers.opc_variant(Layers.POLY) == (10, 1)
        assert Layers.sraf_variant(Layers.POLY) == (10, 2)
        assert Layers.printed_variant(Layers.POLY) == (10, 9)
        assert Layers.POLY_OPC == Layers.opc_variant(Layers.POLY)


class TestTechnology:
    def test_default_node(self):
        tech = make_tech_90nm()
        assert tech.node_nm == 90
        assert tech.gate_length == 90

    def test_litho_derived_quantities(self):
        litho = make_tech_90nm().litho
        assert litho.rayleigh_resolution == pytest.approx(0.61 * 193 / 0.65)
        assert litho.depth_of_focus == pytest.approx(193 / 0.65**2)

    def test_k1_at_min_pitch_is_low_k1_regime(self):
        tech = make_tech_90nm()
        k1 = tech.litho.k1_for_pitch(tech.rules.poly_pitch)
        # Low-k1 lithography: proximity effects are strong but printable.
        assert 0.3 < k1 < 0.6

    def test_annular_source_defaults(self):
        litho = make_tech_90nm().litho
        assert litho.source_type == "annular"
        assert 0 < litho.sigma_inner < litho.sigma_outer <= 1.0

    def test_device_sensitivity_signs(self):
        dev = make_tech_90nm().device
        assert dev.vth0 > 0
        assert dev.vth_rolloff > 0
        assert dev.l_min < dev.l_nominal
        assert dev.vdd > dev.vth0

    def test_frozen(self):
        tech = make_tech_90nm()
        with pytest.raises(AttributeError):
            tech.node_nm = 65


class TestTech130:
    def test_node_constants(self):
        from repro.pdk import make_tech_130nm

        tech = make_tech_130nm()
        assert tech.node_nm == 130
        assert tech.litho.wavelength == 248.0
        assert 0.5 < tech.litho.k1_for_pitch(tech.rules.poly_pitch) < 0.6

    def test_library_builds_drc_clean(self):
        from repro.cells import build_library
        from repro.pdk import make_tech_130nm
        from repro.pdk.rules import run_drc

        tech = make_tech_130nm()
        lib = build_library(tech)
        for cell in lib:
            shapes = {layer: cell.layout.polygons_on(layer)
                      for layer in cell.layout.layers()}
            assert run_drc(shapes, tech.rules) == [], cell.name

    def test_anchor_calibrates(self):
        from repro.litho import LithographySimulator
        from repro.pdk import make_tech_130nm

        tech = make_tech_130nm()
        sim = LithographySimulator.for_tech(tech)
        threshold = sim.calibrate_to_anchor(tech.rules.gate_length,
                                            tech.rules.poly_pitch)
        assert 0.2 < threshold < 0.6

    def test_fo4_scales_with_node(self):
        from repro.cells import build_library
        from repro.device import AlphaPowerModel
        from repro.pdk import make_tech_130nm, make_tech_90nm
        from repro.timing import characterize_library

        def fo4(tech):
            lib = build_library(tech)
            liberty = characterize_library(lib, AlphaPowerModel(tech.device))
            inv = liberty["INV_X1"]
            load = 4 * inv.capacitance("A")
            return max(inv.arcs[0].delay_rise.lookup(30, load),
                       inv.arcs[0].delay_fall.lookup(30, load))

        assert fo4(make_tech_130nm()) > fo4(make_tech_90nm())
