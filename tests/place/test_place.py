"""Tests for placement and layout assembly."""

import pytest

from repro.cells import build_library
from repro.circuits import inverter_chain, ripple_carry_adder
from repro.pdk import Layers, make_tech_90nm
from repro.place import assemble_layout, instance_gate_rects, place_rows
from repro.place.assembler import TOP_CELL


@pytest.fixture(scope="module")
def tech():
    return make_tech_90nm()


@pytest.fixture(scope="module")
def lib(tech):
    return build_library(tech)


class TestPlacer:
    def test_empty_netlist_rejected(self, lib):
        from repro.circuits import Netlist

        with pytest.raises(ValueError):
            place_rows(Netlist("empty"), lib)

    def test_all_gates_placed(self, lib):
        netlist = ripple_carry_adder(4)
        placement = place_rows(netlist, lib)
        assert len(placement) == netlist.gate_count

    def test_no_overlaps(self, lib):
        netlist = ripple_carry_adder(4)
        placement = place_rows(netlist, lib)
        placed = list(placement.gates.values())
        for i, a in enumerate(placed):
            for b in placed[i + 1:]:
                assert not a.bbox.overlaps(b.bbox), f"{a.gate_name} overlaps {b.gate_name}"

    def test_cells_inside_die(self, lib):
        placement = place_rows(ripple_carry_adder(4), lib)
        for placed in placement.gates.values():
            assert placement.die.contains_rect(placed.bbox)

    def test_rows_near_square_aspect(self, lib):
        placement = place_rows(ripple_carry_adder(8), lib, aspect_ratio=1.0)
        assert placement.rows > 1
        assert 0.3 < placement.die.width / placement.die.height < 3.0

    def test_single_row_for_tiny_design(self, lib):
        placement = place_rows(inverter_chain(2), lib)
        assert placement.rows == 1

    def test_alternate_rows_flipped(self, lib):
        placement = place_rows(ripple_carry_adder(8), lib)
        by_row = {}
        for placed in placement.gates.values():
            by_row.setdefault(placed.row, placed)
        assert not by_row[0].transform.mirror_x
        if 1 in by_row:
            assert by_row[1].transform.mirror_x

    def test_flip_disabled(self, lib):
        placement = place_rows(ripple_carry_adder(8), lib, flip_alternate_rows=False)
        assert all(not p.transform.mirror_x for p in placement.gates.values())

    def test_utilization_full_rows(self, lib):
        placement = place_rows(inverter_chain(4), lib)
        assert placement.utilization(lib) == pytest.approx(1.0)

    def test_hpwl_positive_and_local(self, lib):
        netlist = inverter_chain(10)
        placement = place_rows(netlist, lib)
        hpwl = placement.half_perimeter_wirelength(netlist, lib)
        inv_width = lib["INV_X1"].width
        # Chain neighbours abut, so each 2-pin net spans about one cell width.
        assert 0 < hpwl <= 10 * (inv_width + lib.tech.rules.cell_height)


class TestAssembler:
    def test_layout_structure(self, lib):
        netlist = ripple_carry_adder(2)
        placement = place_rows(netlist, lib)
        layout = assemble_layout(netlist, lib, placement)
        assert TOP_CELL in layout
        assert len(layout[TOP_CELL].instances) == netlist.gate_count
        assert [c.name for c in layout.top_cells()] == [TOP_CELL]

    def test_flat_poly_count(self, lib):
        netlist = inverter_chain(5)
        placement = place_rows(netlist, lib)
        layout = assemble_layout(netlist, lib, placement)
        polys = layout.flat_polygons(TOP_CELL, Layers.POLY)
        # 5 inverters x (1 stripe + 1 pad).
        assert len(polys) == 10

    def test_gate_rects_one_per_transistor(self, lib):
        netlist = ripple_carry_adder(2)
        placement = place_rows(netlist, lib)
        rects = instance_gate_rects(netlist, lib, placement)
        expected = sum(len(lib[g.cell_name].transistors) for g in netlist.gates.values())
        assert len(rects) == expected

    def test_gate_rects_inside_placed_bbox(self, lib):
        netlist = ripple_carry_adder(4)
        placement = place_rows(netlist, lib)
        rects = instance_gate_rects(netlist, lib, placement)
        for (gate_name, _), rect in rects.items():
            assert placement[gate_name].bbox.contains_rect(rect)

    def test_gate_rects_fall_on_poly(self, lib, tech):
        netlist = inverter_chain(6)
        placement = place_rows(netlist, lib)
        layout = assemble_layout(netlist, lib, placement)
        polys = layout.flat_polygons(TOP_CELL, Layers.POLY)
        rects = instance_gate_rects(netlist, lib, placement)
        for rect in rects.values():
            hosting = [p for p in polys if p.bbox.contains_rect(rect)]
            assert hosting, f"gate rect {rect} not on any poly shape"

    def test_mirrored_instance_gate_rect_valid(self, lib):
        netlist = ripple_carry_adder(8)
        placement = place_rows(netlist, lib)
        mirrored = [p for p in placement.gates.values() if p.transform.mirror_x]
        assert mirrored
        rects = instance_gate_rects(netlist, lib, placement)
        for placed in mirrored:
            cell = lib[placed.cell_name]
            for t in cell.transistors:
                rect = rects[(placed.gate_name, t.name)]
                assert rect.width == pytest.approx(t.length)
                assert rect.height == pytest.approx(t.width)
