"""Tests for the two-layer maze router."""

import pytest

from repro.cells import build_library
from repro.circuits import c17, inverter_chain, ripple_carry_adder
from repro.geometry import Point, Rect
from repro.pdk import make_tech_90nm
from repro.place import place_rows
from repro.route import GridRouter, route_design
from repro.route.router import HORIZONTAL, VERTICAL


@pytest.fixture(scope="module")
def tech():
    return make_tech_90nm()


@pytest.fixture(scope="module")
def lib(tech):
    return build_library(tech)


def connected(cells):
    """All routed grid cells form one connected component."""
    cells = set(cells)
    if not cells:
        return True
    seen = {next(iter(cells))}
    frontier = list(seen)
    while frontier:
        layer, row, col = frontier.pop()
        for cand in [(layer, row, col - 1), (layer, row, col + 1),
                     (layer, row - 1, col), (layer, row + 1, col),
                     (1 - layer, row, col)]:
            if cand in cells and cand not in seen:
                seen.add(cand)
                frontier.append(cand)
    return seen == cells


class TestGridRouter:
    def test_two_terminal_straight(self):
        router = GridRouter(Rect(0, 0, 3200, 3200), pitch=320)
        net = router.route_net("n", [Point(0, 0), Point(1600, 0)])
        assert not net.failed
        assert net.wirelength_nm == pytest.approx(1600)
        assert connected(net.cells)

    def test_l_route_uses_via(self):
        router = GridRouter(Rect(0, 0, 3200, 3200), pitch=320)
        net = router.route_net("n", [Point(0, 0), Point(1600, 1600)])
        assert not net.failed
        assert net.vias >= 1
        assert net.wirelength_nm == pytest.approx(3200)

    def test_multi_terminal_tree_shares_track(self):
        router = GridRouter(Rect(0, 0, 6400, 6400), pitch=320)
        net = router.route_net(
            "n", [Point(0, 0), Point(3200, 0), Point(1600, 1600)]
        )
        assert not net.failed
        assert connected(net.cells)
        # A tree, not three point-to-point routes: less than the sum.
        assert net.wirelength_nm < 3200 + 3200 + 1600

    def test_blocked_net_detours(self):
        router = GridRouter(Rect(0, 0, 3200, 3200), pitch=320)
        # Wall off the straight horizontal path with another net.
        for row in range(router.rows):
            router.occupancy[(HORIZONTAL, row, 3)] = "wall"
            router.occupancy[(VERTICAL, row, 3)] = "wall"
        net = router.route_net("n", [Point(0, 320), Point(3200, 320)])
        # The wall spans the full die: no path exists at all.
        assert net.failed

    def test_partial_wall_forces_detour(self):
        router = GridRouter(Rect(0, 0, 3200, 3200), pitch=320)
        for row in range(0, router.rows - 2):
            router.occupancy[(HORIZONTAL, row, 3)] = "wall"
            router.occupancy[(VERTICAL, row, 3)] = "wall"
        net = router.route_net("n", [Point(0, 320), Point(3200, 320)])
        assert not net.failed
        assert net.wirelength_nm > 3200  # had to go around

    def test_bad_pitch_rejected(self):
        with pytest.raises(ValueError):
            GridRouter(Rect(0, 0, 100, 100), pitch=0)


class TestRouteDesign:
    @pytest.fixture(scope="class")
    def routed_chain(self, lib):
        netlist = inverter_chain(6)
        placement = place_rows(netlist, lib)
        return netlist, placement, route_design(netlist, lib, placement)

    def test_all_internal_nets_routed(self, routed_chain, lib):
        netlist, _, result = routed_chain
        assert result.clean
        # Chain nets w0..w4 plus in0 (one load only -> not routed as 2-pin?
        # in0 has a single gate pin, so it is out of the multi-terminal set).
        for i in range(5):
            assert f"w{i}" in result.nets

    def test_nets_connected_and_disjoint(self, routed_chain):
        _, _, result = routed_chain
        seen = {}
        for name, net in result.nets.items():
            assert connected(net.cells), name
            for cell in net.cells:
                assert seen.setdefault(cell, name) == name, "track overlap"

    def test_routed_length_at_least_hpwl_scale(self, routed_chain, lib):
        netlist, placement, result = routed_chain
        assert result.total_wirelength_nm > 0
        hpwl = placement.half_perimeter_wirelength(netlist, lib)
        # A routed tree is never shorter than ~half the HPWL scale and
        # rarely more than a few times it on an uncongested chain.
        assert 0.2 * hpwl < result.total_wirelength_nm < 6 * hpwl

    def test_c17_routes_clean(self, lib):
        netlist = c17(lib)
        placement = place_rows(netlist, lib)
        result = route_design(netlist, lib, placement)
        assert result.clean
        assert result.total_vias > 0

    def test_sta_consumes_routed_lengths(self, lib, tech):
        from repro.device import AlphaPowerModel
        from repro.timing import StaEngine, characterize_library

        netlist = ripple_carry_adder(2)
        placement = place_rows(netlist, lib)
        result = route_design(netlist, lib, placement)
        liberty = characterize_library(lib, AlphaPowerModel(tech.device))
        hpwl_engine = StaEngine(netlist, lib, liberty, placement)
        routed_engine = StaEngine(netlist, lib, liberty, placement,
                                  net_lengths=result.net_lengths())
        d_est = hpwl_engine.run().critical_delay
        d_routed = routed_engine.run().critical_delay
        assert d_routed > 0
        # Routed wires detour: delays shift, same order of magnitude.
        assert 0.5 * d_est < d_routed < 2.0 * d_est
