"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_flow_defaults(self):
        args = build_parser().parse_args(["flow"])
        assert args.design == "c17"
        assert args.opc == "rule"
        assert args.jobs == 1
        assert args.trace is None
        assert args.period is None  # auto-derived from the drawn STA

    def test_flow_jobs_and_trace(self):
        args = build_parser().parse_args(
            ["flow", "--jobs", "4", "--trace", "t.json"])
        assert args.jobs == 4
        assert args.trace == "t.json"

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.design == "c17"
        assert args.jobs == 1

    def test_unknown_design_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["flow", "--design", "pentium4"])

    def test_flow_durability_defaults(self):
        args = build_parser().parse_args(["flow"])
        assert args.run_dir is None
        assert args.resume is False
        assert args.max_quarantine_fraction == 0.5

    def test_sweep_durability_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--run-dir", "rd", "--resume",
             "--max-quarantine-fraction", "0.25"])
        assert args.run_dir == "rd"
        assert args.resume is True
        assert args.max_quarantine_fraction == 0.25


class TestCommands:
    def test_flow_command_with_trace(self, tmp_path, capsys):
        import json

        trace_file = tmp_path / "trace.json"
        assert main(["flow", "--design", "c17", "--opc", "none",
                     "--period", "500", "--trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "WNS drawn" in out
        payload = json.loads(trace_file.read_text())
        names = [s["name"] for s in payload["stages"]]
        assert names[0] == "place" and "metrology" in names

    def test_sta_command(self, capsys):
        assert main(["sta", "--design", "rca4", "--period", "800", "--paths", "2"]) == 0
        out = capsys.readouterr().out
        assert "WNS" in out
        assert "Path to" in out

    def test_liberty_command_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "repro.lib"
        assert main(["liberty", "--out", str(out_file)]) == 0
        text = out_file.read_text()
        assert text.startswith("library (")
        assert "cell (INV_X1)" in text

    def test_gds_command(self, tmp_path, capsys):
        out_file = tmp_path / "chip.gds"
        assert main(["gds", "--design", "c17", "--out", str(out_file)]) == 0
        from repro.gds import read_gds

        layout = read_gds(str(out_file))
        assert "CHIP" in layout
        assert "gates" in capsys.readouterr().out
