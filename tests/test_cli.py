"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_flow_defaults(self):
        args = build_parser().parse_args(["flow"])
        assert args.design == "c17"
        assert args.opc == "rule"

    def test_unknown_design_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["flow", "--design", "pentium4"])


class TestCommands:
    def test_sta_command(self, capsys):
        assert main(["sta", "--design", "rca4", "--period", "800", "--paths", "2"]) == 0
        out = capsys.readouterr().out
        assert "WNS" in out
        assert "Path to" in out

    def test_liberty_command_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "repro.lib"
        assert main(["liberty", "--out", str(out_file)]) == 0
        text = out_file.read_text()
        assert text.startswith("library (")
        assert "cell (INV_X1)" in text

    def test_gds_command(self, tmp_path, capsys):
        out_file = tmp_path / "chip.gds"
        assert main(["gds", "--design", "c17", "--out", str(out_file)]) == 0
        from repro.gds import read_gds

        layout = read_gds(str(out_file))
        assert "CHIP" in layout
        assert "gates" in capsys.readouterr().out
