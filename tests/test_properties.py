"""Cross-module property-based tests on core invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cells import build_library
from repro.geometry import Polygon, Rect, fragment_polygon, rebuild_polygon
from repro.litho import marching_squares, rasterize
from repro.pdk import make_tech_90nm
from repro.timing.liberty import TimingTable


@pytest.fixture(scope="module")
def lib():
    return build_library(make_tech_90nm())


@st.composite
def rectilinear_polygons(draw):
    """L/T/rect rectilinear polygons with generous feature sizes."""
    kind = draw(st.sampled_from(["rect", "l", "t"]))
    w = draw(st.integers(200, 800))
    h = draw(st.integers(200, 800))
    arm = draw(st.integers(100, 190))
    if kind == "rect":
        return Polygon.from_rect(Rect(0, 0, w, h))
    if kind == "l":
        return Polygon.from_xy([(0, 0), (w, 0), (w, arm), (arm, arm), (arm, h), (0, h)])
    # T shape
    return Polygon.from_xy([
        (0, 0), (w, 0), (w, arm), ((w + arm) // 2, arm),
        ((w + arm) // 2, h), ((w - arm) // 2, h), ((w - arm) // 2, arm), (0, arm),
    ])


class TestFragmentationInvariants:
    @settings(max_examples=40, deadline=None)
    @given(rectilinear_polygons())
    def test_fragment_rebuild_identity(self, poly):
        assert rebuild_polygon(fragment_polygon(poly)) == poly

    @settings(max_examples=40, deadline=None)
    @given(rectilinear_polygons(), st.floats(-10, 10))
    def test_uniform_bias_changes_area_by_perimeter(self, poly, bias):
        frags = fragment_polygon(poly)
        for f in frags:
            f.offset = bias
        grown = rebuild_polygon(frags)
        # A = A0 + P*b + 4*corners_correction*b^2; for convex-corner count c
        # and concave count v: A = A0 + P b + (c - v) b^2.
        corners = poly.num_vertices
        expected_min = poly.area + poly.perimeter * bias - corners * bias * bias
        expected_max = poly.area + poly.perimeter * bias + corners * bias * bias
        assert expected_min - 1 <= grown.area <= expected_max + 1


class TestRasterContourRoundtrip:
    @settings(max_examples=20, deadline=None)
    @given(rectilinear_polygons())
    def test_contour_of_raster_recovers_area(self, poly):
        region = poly.bbox.expanded(64)
        grid = rasterize([poly], region, 8.0)
        # Dark feature: coverage 1 inside. Contour at the 0.5 level.
        contours = marching_squares(
            1.0 - grid.data, 0.5, x0=grid.x0, y0=grid.y0, pixel=8.0
        )
        total = sum(c.area for c in contours)
        assert total == pytest.approx(poly.area, rel=0.05)


class TestLibertyTableInvariants:
    axes = st.lists(st.floats(1, 500), min_size=2, max_size=5, unique=True)

    @settings(max_examples=30, deadline=None)
    @given(axes, axes, st.floats(0, 1), st.floats(0, 1))
    def test_interpolation_within_hull(self, slews, loads, ts, tl):
        slews = tuple(sorted(slews))
        loads = tuple(sorted(loads))
        values = tuple(
            tuple(10 + 0.1 * s + 2.0 * c for c in loads) for s in slews
        )
        table = TimingTable(slews, loads, values)
        s = slews[0] + ts * (slews[-1] - slews[0])
        load = loads[0] + tl * (loads[-1] - loads[0])
        got = table.lookup(s, load)
        flat = [v for row in values for v in row]
        assert min(flat) - 1e-9 <= got <= max(flat) + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(st.floats(1, 500), st.floats(0.1, 50))
    def test_linear_function_interpolates_exactly(self, s, l):
        slews = (1.0, 100.0, 500.0)
        loads = (0.1, 10.0, 50.0)
        values = tuple(tuple(3 * si + 7 * li for li in loads) for si in slews)
        table = TimingTable(slews, loads, values)
        assert table.lookup(s, l) == pytest.approx(3 * s + 7 * l, rel=1e-9)


class TestNetworkStrengthInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.floats(60, 140), st.floats(60, 140))
    def test_nand_strength_monotone_in_lengths(self, lib, l_a, l_b):
        nand = lib["NAND2_X1"]
        nominal = nand.network_strength("n")
        derated = nand.network_strength("n", {
            "MN0": (400.0, l_a), "MN1": (400.0, l_b),
        })
        if l_a >= 90 and l_b >= 90:
            assert derated <= nominal + 1e-12
        if l_a <= 90 and l_b <= 90:
            assert derated >= nominal - 1e-12
