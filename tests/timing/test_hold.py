"""Tests for hold (min-path) analysis."""

import pytest

from repro.cells import build_library
from repro.circuits import Netlist
from repro.device import AlphaPowerModel
from repro.pdk import make_tech_90nm
from repro.timing import StaEngine, characterize_library, run_hold
from repro.timing.mc import derate_for_delta_l


@pytest.fixture(scope="module")
def tech():
    return make_tech_90nm()


@pytest.fixture(scope="module")
def lib(tech):
    return build_library(tech)


@pytest.fixture(scope="module")
def liberty(lib, tech):
    return characterize_library(lib, AlphaPowerModel(tech.device))


def reg_to_reg(n_gates: int) -> Netlist:
    """DFF -> chain of n inverters -> DFF."""
    netlist = Netlist(f"r2r{n_gates}")
    netlist.add_input("ck")
    netlist.add_gate("ffa", "DFF_X1", {"D": "d_loop", "CK": "ck", "Q": "q"})
    prev = "q"
    for i in range(n_gates):
        out = f"w{i}"
        netlist.add_gate(f"inv{i}", "INV_X1", {"A": prev, "Z": out})
        prev = out
    netlist.add_gate("ffb", "DFF_X1", {"D": prev, "CK": "ck", "Q": "d_loop"})
    netlist.add_output("q")
    return netlist


class TestHold:
    def test_hold_endpoints_are_register_d_pins(self, lib, liberty):
        netlist = reg_to_reg(3)
        engine = StaEngine(netlist, lib, liberty)
        result = run_hold(engine)
        gates = {e.gate for e in result.endpoints}
        assert gates == {"ffa", "ffb"}

    def test_longer_chain_more_hold_margin(self, lib, liberty):
        short = run_hold(StaEngine(reg_to_reg(1), lib, liberty))
        long = run_hold(StaEngine(reg_to_reg(6), lib, liberty))
        short_ffb = min(e.slack for e in short.endpoints if e.gate == "ffb")
        long_ffb = min(e.slack for e in long.endpoints if e.gate == "ffb")
        assert long_ffb > short_ffb

    def test_min_arrival_below_max_arrival(self, lib, liberty):
        netlist = reg_to_reg(4)
        engine = StaEngine(netlist, lib, liberty)
        hold = run_hold(engine)
        setup = engine.run()
        for key, min_arrival in hold.min_arrivals.items():
            if key in setup.arrivals:
                assert min_arrival <= setup.arrivals[key] + 1e-9

    def test_fast_gates_erode_hold_margin(self, lib, liberty, tech):
        netlist = reg_to_reg(2)
        engine = StaEngine(netlist, lib, liberty)
        model = AlphaPowerModel(tech.device)
        nominal = run_hold(engine).worst_hold_slack
        fast = {
            name: derate_for_delta_l(lib[g.cell_name], -10.0, model)
            for name, g in netlist.gates.items()
        }
        eroded = run_hold(engine, derates=fast).worst_hold_slack
        assert eroded < nominal

    def test_violation_detection(self, lib, liberty):
        # A direct register-to-register connection with a huge hold demand.
        netlist = reg_to_reg(1)
        engine = StaEngine(netlist, lib, liberty)
        result = run_hold(engine, hold_time_ps=0.0)
        # Default library hold (setup/2) is small: short path should pass.
        assert result.worst_hold_slack > 0
        assert result.violations == []

    def test_no_registers_means_no_endpoints(self, lib, liberty):
        from repro.circuits import inverter_chain

        engine = StaEngine(inverter_chain(3), lib, liberty)
        result = run_hold(engine)
        assert result.endpoints == []
        assert result.worst_hold_slack == float("inf")
