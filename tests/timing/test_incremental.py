"""Tests for incremental timing updates (exactness vs full rerun)."""

import pytest

from repro.cells import build_library
from repro.circuits import c17, random_logic, ripple_carry_adder
from repro.device import AlphaPowerModel
from repro.pdk import make_tech_90nm
from repro.place import place_rows
from repro.timing import (
    InstanceDerate,
    StaEngine,
    TimingConstraints,
    affected_gates,
    characterize_library,
    run_incremental,
)
from repro.timing.mc import derate_for_delta_l


@pytest.fixture(scope="module")
def tech():
    return make_tech_90nm()


@pytest.fixture(scope="module")
def lib(tech):
    return build_library(tech)


@pytest.fixture(scope="module")
def liberty(lib, tech):
    return characterize_library(lib, AlphaPowerModel(tech.device))


@pytest.fixture(scope="module")
def model(tech):
    return AlphaPowerModel(tech.device)


def assert_results_equal(a, b):
    assert set(a.arrivals) == set(b.arrivals)
    for key in a.arrivals:
        assert a.arrivals[key] == pytest.approx(b.arrivals[key], abs=1e-9), key
        assert a.slews[key] == pytest.approx(b.slews[key], abs=1e-9), key
    slacks_a = sorted((e.net, e.transition, round(e.slack, 9)) for e in a.endpoints)
    slacks_b = sorted((e.net, e.transition, round(e.slack, 9)) for e in b.endpoints)
    assert slacks_a == slacks_b


class TestAffectedGates:
    def test_includes_fanout_cone_and_input_drivers(self, lib, liberty):
        netlist = c17(lib)
        engine = StaEngine(netlist, lib, liberty)
        cone = affected_gates(engine, {"g_n16"})
        # g_n16 feeds g_n22 and g_n23; its input nets n2 (PI) and n11.
        assert {"g_n16", "g_n22", "g_n23", "g_n11"} <= cone
        assert "g_n10" not in cone or True  # g_n10 only if downstream

    def test_downstream_of_driver_included(self, lib, liberty):
        netlist = c17(lib)
        engine = StaEngine(netlist, lib, liberty)
        cone = affected_gates(engine, {"g_n22"})
        # Changing g_n22 changes the load on n10 and n16 -> their drivers
        # recompute, and everything downstream of those drivers does too.
        assert {"g_n22", "g_n10", "g_n16", "g_n23"} <= cone


class TestIncrementalExactness:
    @pytest.mark.parametrize("changed", [["g_n10"], ["g_n16"], ["g_n22", "g_n19"]])
    def test_matches_full_rerun_c17(self, lib, liberty, model, changed):
        netlist = c17(lib)
        engine = StaEngine(netlist, lib, liberty)
        constraints = TimingConstraints(clock_period_ps=500)
        baseline = engine.run(constraints)
        derates = {name: derate_for_delta_l(lib[netlist.gates[name].cell_name],
                                            6.0, model)
                   for name in changed}
        full = engine.run(constraints, derates)
        incremental = run_incremental(engine, baseline, set(changed),
                                      constraints, derates)
        assert_results_equal(full, incremental)

    def test_matches_on_adder_with_cap_changes(self, lib, liberty):
        netlist = ripple_carry_adder(4)
        engine = StaEngine(netlist, lib, liberty, place_rows(netlist, lib))
        constraints = TimingConstraints(clock_period_ps=800)
        baseline = engine.run(constraints)
        derates = {"fa1_gn2": InstanceDerate(cap_scale=1.7, delay_fall_scale=1.2)}
        full = engine.run(constraints, derates)
        incremental = run_incremental(engine, baseline, {"fa1_gn2"},
                                      constraints, derates)
        assert_results_equal(full, incremental)

    def test_matches_on_random_logic_sequence(self, lib, liberty, model):
        netlist = random_logic(40, n_inputs=8, seed=4)
        engine = StaEngine(netlist, lib, liberty)
        constraints = TimingConstraints(clock_period_ps=600)
        previous = engine.run(constraints)
        derates = {}
        for step, gate_name in enumerate(["g3", "g17", "g30"]):
            cell = lib[netlist.gates[gate_name].cell_name]
            derates = dict(derates)
            derates[gate_name] = derate_for_delta_l(cell, -5.0 - step, model)
            full = engine.run(constraints, derates)
            previous = run_incremental(engine, previous, {gate_name},
                                       constraints, derates)
            assert_results_equal(full, previous)

    def test_empty_change_set_is_identity(self, lib, liberty):
        netlist = c17(lib)
        engine = StaEngine(netlist, lib, liberty)
        constraints = TimingConstraints(clock_period_ps=500)
        baseline = engine.run(constraints)
        incremental = run_incremental(engine, baseline, set(), constraints, {})
        assert_results_equal(baseline, incremental)

    def test_cone_smaller_than_netlist(self, lib, liberty):
        netlist = random_logic(60, n_inputs=10, seed=6)
        engine = StaEngine(netlist, lib, liberty)
        cone = affected_gates(engine, {"g59"})
        assert len(cone) < netlist.gate_count
