"""Property-style parity: ``run_incremental`` vs a full ``StaEngine.run``.

Exercises the incremental re-timing path on large registered vehicles
(the structured-ASIC fabric) under randomized mixed derates — delay
scales, ``cap_scale`` load changes, and ``failed`` quarantine flags — and
requires *bit-identical* arrivals, slews, and endpoint slacks, not
approximate agreement.  Also pins the reconvergent-fanout merge: a
re-timed cone that rejoins itself must not leave a stale worst-slew
behind (the bug class this file guards).
"""

import random

import pytest

from repro.cells import build_library
from repro.circuits import structured_asic
from repro.circuits.netlist import Netlist
from repro.device import AlphaPowerModel
from repro.pdk import make_tech_90nm
from repro.place import place_rows
from repro.timing import (
    InstanceDerate,
    StaEngine,
    TimingConstraints,
    affected_gates,
    characterize_library,
    diff_derates,
    retime,
    run_incremental,
)


@pytest.fixture(scope="module")
def tech():
    return make_tech_90nm()


@pytest.fixture(scope="module")
def lib(tech):
    return build_library(tech)


@pytest.fixture(scope="module")
def liberty(lib, tech):
    return characterize_library(lib, AlphaPowerModel(tech.device))


@pytest.fixture(scope="module")
def fabric_engine(lib, liberty):
    netlist = structured_asic(400, seed=3)
    placement = place_rows(netlist, lib)
    return netlist, StaEngine(netlist, lib, liberty, placement)


def assert_bit_identical(a, b):
    """Exact equality — the incremental contract is ==, not approx."""
    assert set(a.arrivals) == set(b.arrivals)
    assert a.arrivals == b.arrivals
    assert a.slews == b.slews
    ea = sorted((e.net, e.transition, e.arrival, e.required) for e in a.endpoints)
    eb = sorted((e.net, e.transition, e.arrival, e.required) for e in b.endpoints)
    assert ea == eb
    assert a.wns == b.wns


def random_derates(netlist, rng, fraction, with_failed=True):
    """A mixed derate map over a random subset of instances."""
    names = sorted(netlist.gates)
    chosen = rng.sample(names, max(1, int(len(names) * fraction)))
    derates = {}
    for name in chosen:
        kind = rng.randrange(3 if with_failed else 2)
        if kind == 0:    # delay-only (the classic CD derate)
            scale = 1.0 + rng.uniform(-0.08, 0.12)
            derates[name] = InstanceDerate(delay_rise_scale=scale,
                                           delay_fall_scale=scale * 1.01)
        elif kind == 1:  # load change: ripples to the driver of each input
            derates[name] = InstanceDerate(cap_scale=1.0 + rng.uniform(-0.1, 0.2))
        else:            # quarantined instance
            derates[name] = InstanceDerate(failed=True)
    return derates


class TestFabricParity:
    @pytest.mark.parametrize("seed,fraction", [(11, 0.02), (12, 0.05), (13, 0.2)])
    def test_mixed_derates_bit_identical(self, fabric_engine, seed, fraction):
        netlist, engine = fabric_engine
        constraints = TimingConstraints(clock_period_ps=900.0)
        baseline = engine.run(constraints)
        rng = random.Random(seed)
        derates = random_derates(netlist, rng, fraction)
        full = engine.run(constraints, derates)
        incremental = run_incremental(engine, baseline, diff_derates({}, derates),
                                      constraints, derates)
        assert_bit_identical(full, incremental)

    def test_two_step_retime(self, fabric_engine):
        """old -> new derate transitions (not just {} -> new)."""
        netlist, engine = fabric_engine
        constraints = TimingConstraints(clock_period_ps=900.0)
        rng = random.Random(21)
        old = random_derates(netlist, rng, 0.1)
        new = dict(old)
        # mutate a slice: drop some, change some, add some
        names = sorted(old)
        for name in names[::3]:
            del new[name]
        for name in names[1::3]:
            new[name] = InstanceDerate(delay_rise_scale=1.07, delay_fall_scale=1.07)
        new["b0_ff0"] = InstanceDerate(cap_scale=1.15)
        previous = engine.run(constraints, old)
        stepped = retime(engine, previous, old, new, constraints)
        full = engine.run(constraints, new)
        assert_bit_identical(full, stepped)

    def test_identity_derate_diff_is_empty(self):
        # an explicit identity entry is not a change
        assert diff_derates({}, {"g": InstanceDerate()}) == set()
        assert diff_derates({"g": InstanceDerate()}, {}) == set()

    def test_cone_is_register_bounded(self, fabric_engine, lib):
        """A stage-0 change stays inside stage 0 and its two banks.

        The closure may touch bank-0 flops (they drive the changed gate's
        inputs, so their load changes) and bank-1 flops (they capture
        stage-0 outputs), but it must never *cross* those registers into
        stage 1 or beyond — that containment is what keeps incremental
        re-timing cheap on a registered fabric.
        """
        netlist, engine = fabric_engine
        changed = next(name for name in netlist.gates if name.startswith("s0_"))
        cone = affected_gates(engine, {changed})
        allowed = ("s0_", "b0_", "b1_", "in_")
        offenders = [n for n in cone if not n.startswith(allowed)]
        assert offenders == []
        # and the cone is a small fraction of a 400-gate fabric
        assert len(cone) < len(netlist.gates) / 4


class TestReconvergentFanout:
    """Targeted audit of the stale-slew merge on reconvergent fanout.

    Diamond: src drives two branches (fast buf / slow chain) that rejoin
    in one NAND2.  A derate on *one* branch changes the rejoin gate's
    worst input slew; the incremental merge must pick up the new worst
    even though the other branch's contribution was computed in the
    baseline pass.
    """

    @pytest.fixture(scope="class")
    def diamond(self, lib, liberty):
        nl = Netlist("diamond")
        nl.add_input("a")
        nl.add_input("b")
        nl.add_gate("src", "NAND2_X1", {"A": "a", "B": "b", "Z": "mid"})
        nl.add_gate("fast", "BUF_X1", {"A": "mid", "Z": "p"})
        nl.add_gate("slow1", "INV_X1", {"A": "mid", "Z": "q1"})
        nl.add_gate("slow2", "INV_X1", {"A": "q1", "Z": "q"})
        nl.add_gate("join", "NAND2_X1", {"A": "p", "B": "q", "Z": "out"})
        nl.add_output("out")
        nl.validate(lib)
        return nl, StaEngine(nl, lib, liberty)

    @pytest.mark.parametrize("changed,scale", [
        ("fast", 1.5), ("slow1", 1.5), ("fast", 0.6), ("slow2", 2.0),
        ("src", 1.3),
    ])
    def test_branch_derate_reconverges_exactly(self, diamond, changed, scale):
        nl, engine = diamond
        constraints = TimingConstraints(clock_period_ps=500.0)
        baseline = engine.run(constraints)
        derates = {changed: InstanceDerate(delay_rise_scale=scale,
                                           delay_fall_scale=scale)}
        full = engine.run(constraints, derates)
        incremental = run_incremental(engine, baseline, {changed},
                                      constraints, derates)
        assert_bit_identical(full, incremental)

    def test_cap_change_on_branch_reaches_src(self, diamond):
        # cap_scale on a branch input changes the load seen by src: the
        # cone must include src and therefore both branches
        nl, engine = diamond
        cone = affected_gates(engine, {"fast"})
        assert {"fast", "src", "slow1", "slow2", "join"} <= cone
        constraints = TimingConstraints(clock_period_ps=500.0)
        baseline = engine.run(constraints)
        derates = {"fast": InstanceDerate(cap_scale=1.4)}
        full = engine.run(constraints, derates)
        incremental = run_incremental(engine, baseline, {"fast"},
                                      constraints, derates)
        assert_bit_identical(full, incremental)

    def test_failed_branch_reconverges_exactly(self, diamond):
        nl, engine = diamond
        constraints = TimingConstraints(clock_period_ps=500.0)
        baseline = engine.run(constraints)
        derates = {"slow1": InstanceDerate(failed=True)}
        full = engine.run(constraints, derates)
        incremental = run_incremental(engine, baseline, {"slow1"},
                                      constraints, derates)
        assert_bit_identical(full, incremental)
