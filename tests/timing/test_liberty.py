"""Tests for NLDM tables and library characterization."""

import pytest

from repro.cells import build_library
from repro.device import AlphaPowerModel
from repro.pdk import make_tech_90nm
from repro.timing import LibertyLibrary, TimingArc, TimingTable, characterize_library
from repro.timing.characterize import characterize_cell, effective_resistance_kohm


@pytest.fixture(scope="module")
def tech():
    return make_tech_90nm()


@pytest.fixture(scope="module")
def lib(tech):
    return build_library(tech)


@pytest.fixture(scope="module")
def model(tech):
    return AlphaPowerModel(tech.device)


@pytest.fixture(scope="module")
def liberty(lib, model):
    return characterize_library(lib, model)


def simple_table():
    return TimingTable(
        slews=(10.0, 20.0),
        loads=(1.0, 2.0, 4.0),
        values=((10.0, 20.0, 40.0), (15.0, 25.0, 45.0)),
    )


class TestTimingTable:
    def test_exact_grid_points(self):
        t = simple_table()
        assert t.lookup(10, 1) == 10
        assert t.lookup(20, 4) == 45

    def test_bilinear_midpoint(self):
        t = simple_table()
        assert t.lookup(15, 1.5) == pytest.approx((10 + 20 + 15 + 25) / 4)

    def test_clamps_outside(self):
        t = simple_table()
        assert t.lookup(-5, 0.1) == 10
        assert t.lookup(100, 100) == 45

    def test_scaled(self):
        t = simple_table().scaled(2.0)
        assert t.lookup(10, 1) == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            TimingTable((), (1.0,), ())
        with pytest.raises(ValueError):
            TimingTable((2.0, 1.0), (1.0,), ((1,), (2,)))
        with pytest.raises(ValueError):
            TimingTable((1.0, 2.0), (1.0,), ((1,),))


class TestTimingArc:
    def test_unateness_routing(self):
        t = simple_table()
        negative = TimingArc("A", "Z", "negative", t, t, t, t)
        assert negative.output_transitions("rise") == ["fall"]
        positive = TimingArc("A", "Z", "positive", t, t, t, t)
        assert positive.output_transitions("rise") == ["rise"]
        non_unate = TimingArc("A", "Z", "non_unate", t, t, t, t)
        assert set(non_unate.output_transitions("fall")) == {"rise", "fall"}

    def test_bad_sense(self):
        t = simple_table()
        with pytest.raises(ValueError):
            TimingArc("A", "Z", "sideways", t, t, t, t)


class TestCharacterization:
    def test_all_cells_characterized(self, liberty, lib):
        assert len(liberty) == len(lib)

    def test_inverter_arc_is_negative_unate(self, liberty):
        inv = liberty["INV_X1"]
        (arc,) = inv.arcs
        assert arc.sense == "negative"
        assert arc.input_pin == "A"

    def test_xor_arcs_non_unate(self, liberty):
        xor = liberty["XOR2_X1"]
        assert all(arc.sense == "non_unate" for arc in xor.arcs)

    def test_delay_increases_with_load(self, liberty):
        inv = liberty["INV_X1"]
        table = inv.arcs[0].delay_fall
        assert table.lookup(30, 8) > table.lookup(30, 2)

    def test_delay_increases_with_slew(self, liberty):
        inv = liberty["INV_X1"]
        table = inv.arcs[0].delay_fall
        assert table.lookup(120, 4) > table.lookup(15, 4)

    def test_bigger_drive_is_faster(self, liberty):
        d1 = liberty["INV_X1"].arcs[0].delay_fall.lookup(30, 8)
        d2 = liberty["INV_X2"].arcs[0].delay_fall.lookup(30, 8)
        assert d2 < d1

    def test_nand_fall_slower_than_inv_fall(self, liberty):
        # Series NMOS stack: weaker pull-down than the inverter.
        inv = liberty["INV_X1"].arcs[0].delay_fall.lookup(30, 4)
        nand = liberty["NAND2_X1"].arcs[0].delay_fall.lookup(30, 4)
        assert nand > inv

    def test_fo4_delay_in_era_range(self, liberty):
        """INV_X1 driving 4x its own input cap: the canonical FO4 metric.

        90 nm-era FO4 is ~25-45 ps; the model must land in that decade.
        """
        inv = liberty["INV_X1"]
        fo4_load = 4 * inv.capacitance("A")
        delay = max(
            inv.arcs[0].delay_rise.lookup(30, fo4_load),
            inv.arcs[0].delay_fall.lookup(30, fo4_load),
        )
        assert 10 < delay < 80

    def test_input_caps_physical(self, liberty):
        for name in ("INV_X1", "NAND2_X1", "XOR2_X1"):
            for cap in liberty[name].input_caps.values():
                assert 0.3 < cap < 20.0  # fF

    def test_dff_characterization(self, liberty):
        dff = liberty["DFF_X1"]
        assert dff.is_sequential
        assert dff.clock_pin == "CK"
        assert dff.clk_to_q > 0
        assert dff.setup_time > 0
        (arc,) = dff.arcs
        assert arc.input_pin == "CK"

    def test_effective_resistance_order(self, lib, model):
        r_inv = effective_resistance_kohm(lib["INV_X1"], "n", model)
        r_nand = effective_resistance_kohm(lib["NAND2_X1"], "n", model)
        assert r_nand == pytest.approx(2 * r_inv, rel=0.05)

    def test_duplicate_cell_rejected(self, lib, model):
        liberty = LibertyLibrary()
        liberty.add(characterize_cell(lib["INV_X1"], model))
        with pytest.raises(ValueError):
            liberty.add(characterize_cell(lib["INV_X1"], model))

    def test_unknown_pin_cap(self, liberty):
        with pytest.raises(KeyError):
            liberty["INV_X1"].capacitance("Q")
