"""Regression tests for Monte-Carlo statistical timing.

Pins the empty-result behaviour (a clear ``ValueError("no samples")``
instead of ``ZeroDivisionError``/bare ``ValueError`` from the arithmetic),
the nearest-rank percentile definition (the old ``int`` truncation was
biased one order statistic high), the sticky ``failed`` flag through
derate composition (an earlier inline composition dropped
``sampled.failed`` whenever base derates were present), and the
correlated-field normalization (the raw ``cos*cos`` wave delivered only
half the requested correlated sigma).
"""

import math
import statistics

import pytest

from repro.cells import build_library
from repro.circuits import inverter_chain, structured_asic
from repro.device import AlphaPowerModel
from repro.pdk import make_tech_90nm
from repro.place import place_rows
from repro.timing import (
    InstanceDerate,
    StaEngine,
    characterize_library,
    compose_derates,
    run_monte_carlo,
)
from repro.timing.mc import CdVariationSpec, MonteCarloResult, sample_instance_deltas


@pytest.fixture(scope="module")
def empty():
    return MonteCarloResult()


class TestEmptyResult:
    def test_mean_raises_clearly(self, empty):
        with pytest.raises(ValueError, match="no samples"):
            empty.mean_wns

    def test_sigma_raises_clearly(self, empty):
        with pytest.raises(ValueError, match="no samples"):
            empty.sigma_wns

    def test_min_raises_clearly(self, empty):
        with pytest.raises(ValueError, match="no samples"):
            empty.min_wns

    def test_percentile_raises_clearly(self, empty):
        with pytest.raises(ValueError, match="no samples"):
            empty.percentile_wns(50)

    def test_zero_sample_run_returns_empty_result(self):
        tech = make_tech_90nm()
        lib = build_library(tech)
        model = AlphaPowerModel(tech.device)
        engine = StaEngine(inverter_chain(2), lib,
                           characterize_library(lib, model), None)
        result = run_monte_carlo(engine, model, samples=0)
        assert result.wns_samples == []
        with pytest.raises(ValueError, match="no samples"):
            result.mean_wns


class TestNearestRankPercentile:
    @pytest.fixture(scope="class")
    def ten(self):
        # Deliberately unsorted: percentile must sort internally.
        return MonteCarloResult(wns_samples=[7.0, 2.0, 9.0, 4.0, 1.0,
                                             8.0, 3.0, 10.0, 5.0, 6.0])

    def test_median_is_fifth_order_statistic(self, ten):
        # Nearest rank: ceil(0.5 * 10) = 5th smallest, not the 6th.
        assert ten.percentile_wns(50) == 5.0

    def test_q0_is_minimum(self, ten):
        assert ten.percentile_wns(0) == 1.0

    def test_q100_is_maximum(self, ten):
        assert ten.percentile_wns(100) == 10.0

    def test_intermediate_rank(self, ten):
        assert ten.percentile_wns(30) == 3.0  # ceil(3.0) = 3rd smallest
        assert ten.percentile_wns(31) == 4.0  # ceil(3.1) = 4th smallest

    def test_single_sample_any_q(self):
        one = MonteCarloResult(wns_samples=[42.0])
        for q in (0, 25, 50, 75, 100):
            assert one.percentile_wns(q) == 42.0

    def test_out_of_range_q_rejected(self, ten):
        with pytest.raises(ValueError, match="percentile"):
            ten.percentile_wns(-1)
        with pytest.raises(ValueError, match="percentile"):
            ten.percentile_wns(101)

    def test_summary_stats_still_work(self, ten):
        assert ten.mean_wns == pytest.approx(5.5)
        assert ten.min_wns == 1.0
        assert ten.sigma_wns == pytest.approx(2.8722813, rel=1e-6)


class TestComposeDerates:
    def test_scales_multiply(self):
        a = InstanceDerate(delay_rise_scale=1.1, delay_fall_scale=1.2,
                           cap_scale=1.3)
        b = InstanceDerate(delay_rise_scale=0.9, delay_fall_scale=1.1,
                           cap_scale=1.0)
        c = compose_derates(a, b)
        assert c.delay_rise_scale == pytest.approx(1.1 * 0.9)
        assert c.delay_fall_scale == pytest.approx(1.2 * 1.1)
        assert c.cap_scale == pytest.approx(1.3)
        assert not c.failed

    @pytest.mark.parametrize("prior,sampled,expect", [
        (True, False, True),
        (False, True, True),   # the regression: sampled.failed was dropped
        (True, True, True),
        (False, False, False),
    ])
    def test_failed_flag_is_sticky(self, prior, sampled, expect):
        composed = compose_derates(InstanceDerate(failed=prior),
                                   InstanceDerate(failed=sampled))
        assert composed.failed is expect

    def test_sampled_failure_survives_mc_with_base_derates(self):
        """End-to-end regression: a base-derated instance whose sampled CD
        collapses must stay failed inside run_monte_carlo."""
        tech = make_tech_90nm()
        lib = build_library(tech)
        model = AlphaPowerModel(tech.device)
        netlist = inverter_chain(3)
        engine = StaEngine(netlist, lib, characterize_library(lib, model), None)
        base = {name: InstanceDerate(delay_rise_scale=1.02,
                                     delay_fall_scale=1.02)
                for name in netlist.gates}
        constraints = None
        plain = run_monte_carlo(engine, model, samples=3, constraints=constraints)
        with_base = run_monte_carlo(engine, model, samples=3,
                                    constraints=constraints, base_derates=base)
        # base derates slow every instance: every sample's WNS shrinks
        for p, w in zip(plain.wns_samples, with_base.wns_samples):
            assert w < p


class TestCorrelatedFieldNormalization:
    @pytest.fixture(scope="class")
    def placed_fabric(self):
        tech = make_tech_90nm()
        lib = build_library(tech)
        netlist = structured_asic(400, seed=5)
        return netlist, place_rows(netlist, lib)

    def test_correlated_sigma_delivered(self, placed_fabric):
        """Over many samples, the per-gate delta variance must match
        sigma_correlated^2 + sigma_random^2 — not the /4-deficient value
        the unnormalized cos*cos wave delivered."""
        netlist, placement = placed_fabric
        spec = CdVariationSpec(mean_nm=0.0, sigma_random_nm=1.0,
                               sigma_correlated_nm=3.0,
                               correlation_length_nm=20_000.0, seed=9)
        values = []
        for index in range(400):
            deltas = sample_instance_deltas(netlist, placement, spec, index)
            values.extend(deltas.values())
        sigma = statistics.pstdev(values)
        expected = math.sqrt(spec.sigma_correlated_nm ** 2
                             + spec.sigma_random_nm ** 2)
        deficient = math.sqrt(spec.sigma_correlated_nm ** 2 / 4
                              + spec.sigma_random_nm ** 2)
        # well clear of the old /4-deficient sigma (~1.8 vs ~3.16)
        assert sigma == pytest.approx(expected, rel=0.10)
        assert abs(sigma - deficient) > 0.8

    def test_zero_correlated_sigma_unaffected(self, placed_fabric):
        netlist, placement = placed_fabric
        spec = CdVariationSpec(sigma_random_nm=1.0, sigma_correlated_nm=0.0,
                               seed=9)
        deltas = sample_instance_deltas(netlist, placement, spec, 0)
        sigma = statistics.pstdev(deltas.values())
        assert sigma == pytest.approx(1.0, rel=0.2)

    def test_spatially_smooth(self, placed_fabric):
        """Neighbouring gates share most of their correlated component."""
        netlist, placement = placed_fabric
        spec = CdVariationSpec(sigma_random_nm=0.0, sigma_correlated_nm=2.0,
                               correlation_length_nm=200_000.0, seed=3)
        deltas = sample_instance_deltas(netlist, placement, spec, 1)
        names = sorted(netlist.gates,
                       key=lambda n: (placement.gates[n].bbox.center.y,
                                      placement.gates[n].bbox.center.x))
        diffs = []
        for a, b in zip(names, names[1:]):
            ca = placement.gates[a].bbox.center
            cb = placement.gates[b].bbox.center
            if ca.y == cb.y and abs(cb.x - ca.x) < 3000:  # same-row neighbours
                diffs.append(abs(deltas[a] - deltas[b]))
        spread = max(deltas.values()) - min(deltas.values())
        assert diffs and max(diffs) < max(spread, 1e-9) * 0.2
