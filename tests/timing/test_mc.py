"""Regression tests for MonteCarloResult statistics.

Pins the empty-result behaviour (a clear ``ValueError("no samples")``
instead of ``ZeroDivisionError``/bare ``ValueError`` from the arithmetic)
and the nearest-rank percentile definition (the old ``int`` truncation
was biased one order statistic high).
"""

import pytest

from repro.cells import build_library
from repro.circuits import inverter_chain
from repro.device import AlphaPowerModel
from repro.pdk import make_tech_90nm
from repro.timing import StaEngine, characterize_library, run_monte_carlo
from repro.timing.mc import MonteCarloResult


@pytest.fixture(scope="module")
def empty():
    return MonteCarloResult()


class TestEmptyResult:
    def test_mean_raises_clearly(self, empty):
        with pytest.raises(ValueError, match="no samples"):
            empty.mean_wns

    def test_sigma_raises_clearly(self, empty):
        with pytest.raises(ValueError, match="no samples"):
            empty.sigma_wns

    def test_min_raises_clearly(self, empty):
        with pytest.raises(ValueError, match="no samples"):
            empty.min_wns

    def test_percentile_raises_clearly(self, empty):
        with pytest.raises(ValueError, match="no samples"):
            empty.percentile_wns(50)

    def test_zero_sample_run_returns_empty_result(self):
        tech = make_tech_90nm()
        lib = build_library(tech)
        model = AlphaPowerModel(tech.device)
        engine = StaEngine(inverter_chain(2), lib,
                           characterize_library(lib, model), None)
        result = run_monte_carlo(engine, model, samples=0)
        assert result.wns_samples == []
        with pytest.raises(ValueError, match="no samples"):
            result.mean_wns


class TestNearestRankPercentile:
    @pytest.fixture(scope="class")
    def ten(self):
        # Deliberately unsorted: percentile must sort internally.
        return MonteCarloResult(wns_samples=[7.0, 2.0, 9.0, 4.0, 1.0,
                                             8.0, 3.0, 10.0, 5.0, 6.0])

    def test_median_is_fifth_order_statistic(self, ten):
        # Nearest rank: ceil(0.5 * 10) = 5th smallest, not the 6th.
        assert ten.percentile_wns(50) == 5.0

    def test_q0_is_minimum(self, ten):
        assert ten.percentile_wns(0) == 1.0

    def test_q100_is_maximum(self, ten):
        assert ten.percentile_wns(100) == 10.0

    def test_intermediate_rank(self, ten):
        assert ten.percentile_wns(30) == 3.0  # ceil(3.0) = 3rd smallest
        assert ten.percentile_wns(31) == 4.0  # ceil(3.1) = 4th smallest

    def test_single_sample_any_q(self):
        one = MonteCarloResult(wns_samples=[42.0])
        for q in (0, 25, 50, 75, 100):
            assert one.percentile_wns(q) == 42.0

    def test_out_of_range_q_rejected(self, ten):
        with pytest.raises(ValueError, match="percentile"):
            ten.percentile_wns(-1)
        with pytest.raises(ValueError, match="percentile"):
            ten.percentile_wns(101)

    def test_summary_stats_still_work(self, ten):
        assert ten.mean_wns == pytest.approx(5.5)
        assert ten.min_wns == 1.0
        assert ten.sigma_wns == pytest.approx(2.8722813, rel=1e-6)
