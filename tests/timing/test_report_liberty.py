"""Tests for the timing report writer and Liberty emission."""

import pytest

from repro.cells import build_library
from repro.circuits import inverter_chain, ripple_carry_adder
from repro.device import AlphaPowerModel
from repro.pdk import make_tech_90nm
from repro.timing import (
    StaEngine,
    TimingConstraints,
    characterize_library,
    report_summary,
    report_timing,
    write_liberty,
)


@pytest.fixture(scope="module")
def tech():
    return make_tech_90nm()


@pytest.fixture(scope="module")
def lib(tech):
    return build_library(tech)


@pytest.fixture(scope="module")
def liberty(lib, tech):
    return characterize_library(lib, AlphaPowerModel(tech.device))


class TestReportTiming:
    def test_contains_path_structure(self, lib, liberty):
        netlist = inverter_chain(3)
        engine = StaEngine(netlist, lib, liberty)
        text = report_timing(engine.run(TimingConstraints(clock_period_ps=300)),
                             k=1, netlist=netlist)
        assert "Path to out" in text
        assert "inv0 (INV_X1)/w0" in text
        assert "slack:" in text
        assert "MET" in text

    def test_violated_marker(self, lib, liberty):
        engine = StaEngine(ripple_carry_adder(4), lib, liberty)
        text = report_timing(engine.run(TimingConstraints(clock_period_ps=10)), k=1)
        assert "VIOLATED" in text

    def test_k_blocks(self, lib, liberty):
        engine = StaEngine(ripple_carry_adder(2), lib, liberty)
        text = report_timing(engine.run(), k=3)
        assert text.count("Path to") == 3

    def test_summary(self, lib, liberty):
        engine = StaEngine(ripple_carry_adder(2), lib, liberty)
        summary = report_summary(engine.run(TimingConstraints(clock_period_ps=10)))
        assert "WNS" in summary
        assert "endpoints failing" in summary


class TestLibertyWriter:
    @pytest.fixture(scope="class")
    def text(self, liberty):
        return write_liberty(liberty)

    def test_header(self, text):
        assert text.startswith("library (repro90_typ) {")
        assert 'time_unit : "1ps";' in text
        assert "lu_table_template (delay_template)" in text

    def test_every_cell_present(self, text, liberty):
        for name in liberty.cells:
            assert f"cell ({name}) {{" in text

    def test_arcs_and_tables(self, text):
        assert 'related_pin : "A";' in text
        assert "cell_rise (delay_template)" in text
        assert "fall_transition (delay_template)" in text

    def test_sequential_cell_has_ff_group(self, text):
        assert 'ff (IQ, IQN) { clocked_on : "CK"; next_state : "D"; }' in text
        assert "clock : true;" in text

    def test_braces_balanced(self, text):
        assert text.count("{") == text.count("}")

    def test_numeric_tables_parse(self, text):
        # Every values(...) row must be a quoted list of floats.
        import re

        for match in re.finditer(r'values \(([^;]*)\);', text):
            for quoted in re.findall(r'"([^"]+)"', match.group(1)):
                for token in quoted.split(","):
                    float(token)
