"""Tests for the STA engine, path reporting, derates, corners, and MC."""

import pytest

from repro.cells import build_library
from repro.circuits import Netlist, c17, inverter_chain, ripple_carry_adder
from repro.device import AlphaPowerModel
from repro.metrology.gate_cd import GateCdMeasurement
from repro.pdk import make_tech_90nm
from repro.place import place_rows
from repro.timing import (
    InstanceDerate,
    StaEngine,
    TimingConstraints,
    characterize_library,
    derates_from_measurements,
    instance_leakage,
    run_corners,
    run_monte_carlo,
    top_paths,
)
from repro.timing.mc import CdVariationSpec, CornerSpec, derate_for_delta_l
from repro.timing.paths import path_rank_map, reconstruct_path
from repro.timing.sta import WireModel


@pytest.fixture(scope="module")
def tech():
    return make_tech_90nm()


@pytest.fixture(scope="module")
def lib(tech):
    return build_library(tech)


@pytest.fixture(scope="module")
def model(tech):
    return AlphaPowerModel(tech.device)


@pytest.fixture(scope="module")
def liberty(lib, model):
    return characterize_library(lib, model)


def make_engine(netlist, lib, liberty, placed=True):
    placement = place_rows(netlist, lib) if placed else None
    return StaEngine(netlist, lib, liberty, placement)


class TestBasicSta:
    def test_chain_delay_grows_linearly(self, lib, liberty):
        d5 = make_engine(inverter_chain(5), lib, liberty, placed=False).run().critical_delay
        d10 = make_engine(inverter_chain(10), lib, liberty, placed=False).run().critical_delay
        per_stage = (d10 - d5) / 5
        assert per_stage > 0
        assert d10 == pytest.approx(d5 + 5 * per_stage, rel=1e-6)

    def test_wns_is_period_minus_arrival(self, lib, liberty):
        engine = make_engine(inverter_chain(4), lib, liberty, placed=False)
        result = engine.run(TimingConstraints(clock_period_ps=500))
        assert result.wns == pytest.approx(500 - result.critical_delay)

    def test_negative_slack_when_period_too_short(self, lib, liberty):
        engine = make_engine(ripple_carry_adder(8), lib, liberty)
        result = engine.run(TimingConstraints(clock_period_ps=300))
        assert result.wns < 0
        assert result.tns < result.wns  # many failing endpoints accumulate

    def test_rca_critical_path_is_carry_chain(self, lib, liberty):
        engine = make_engine(ripple_carry_adder(8), lib, liberty)
        result = engine.run()
        worst = top_paths(result, 1)[0]
        assert worst.endpoint_net in ("cout", "s7")
        assert worst.depth >= 15  # rides the carry chain

    def test_slack_of_endpoint(self, lib, liberty):
        engine = make_engine(ripple_carry_adder(2), lib, liberty)
        result = engine.run()
        assert result.slack_of("cout") <= result.slack_of("s0")
        with pytest.raises(KeyError):
            result.slack_of("nonexistent")

    def test_fanout_loading_slows_driver(self, lib, liberty):
        wide = Netlist("fanout")
        wide.add_input("a")
        wide.add_gate("drv", "INV_X1", {"A": "a", "Z": "w"})
        for i in range(8):
            wide.add_gate(f"l{i}", "INV_X1", {"A": "w", "Z": f"y{i}"})
            wide.add_output(f"y{i}")
        narrow = Netlist("single")
        narrow.add_input("a")
        narrow.add_gate("drv", "INV_X1", {"A": "a", "Z": "w"})
        narrow.add_gate("l0", "INV_X1", {"A": "w", "Z": "y0"})
        narrow.add_output("y0")
        d_wide = make_engine(wide, lib, liberty, placed=False).run().critical_delay
        d_narrow = make_engine(narrow, lib, liberty, placed=False).run().critical_delay
        assert d_wide > d_narrow

    def test_wire_model_adds_delay(self, lib, liberty):
        netlist = ripple_carry_adder(4)
        placement = place_rows(netlist, lib)
        bare = StaEngine(netlist, lib, liberty, placement,
                         wire_model=WireModel(c_per_nm=0.0, r_per_nm=0.0))
        loaded = StaEngine(netlist, lib, liberty, placement)
        assert loaded.run().critical_delay > bare.run().critical_delay

    def test_c17(self, lib, liberty):
        engine = make_engine(c17(lib), lib, liberty)
        result = engine.run()
        assert result.critical_delay > 0
        assert len(result.endpoints) == 4  # 2 POs x 2 transitions

    def test_sequential_endpoints(self, lib, liberty):
        netlist = Netlist("seq")
        netlist.add_input("clk_dummy")
        netlist.add_gate("ff1", "DFF_X1", {"D": "loop", "CK": "clk_dummy", "Q": "q1"})
        netlist.add_gate("inv", "INV_X1", {"A": "q1", "Z": "loop"})
        engine = make_engine(netlist, lib, liberty, placed=False)
        result = engine.run(TimingConstraints(clock_period_ps=400))
        nets = {e.net for e in result.endpoints}
        assert "loop" in nets  # the DFF D pin is an endpoint
        assert result.critical_delay > 0  # clk->Q then through the inverter


class TestPaths:
    def test_path_reconstruction_consistent(self, lib, liberty):
        engine = make_engine(ripple_carry_adder(4), lib, liberty)
        result = engine.run()
        for path in top_paths(result, 5):
            assert path.arrival == pytest.approx(
                sum(s.delay for s in path.stages) + result.arrivals[
                    (path.stages[0].net, path.stages[0].transition)
                ]
            )
            assert path.stages[-1].net == path.endpoint_net

    def test_paths_sorted_by_slack(self, lib, liberty):
        engine = make_engine(ripple_carry_adder(6), lib, liberty)
        paths = top_paths(engine.run(), 8)
        slacks = [p.slack for p in paths]
        assert slacks == sorted(slacks)

    def test_rank_map(self, lib, liberty):
        engine = make_engine(ripple_carry_adder(4), lib, liberty)
        paths = top_paths(engine.run(), 6)
        ranks = path_rank_map(paths)
        assert ranks[paths[0].endpoint_net] == 0

    def test_unknown_endpoint_raises(self, lib, liberty):
        engine = make_engine(inverter_chain(2), lib, liberty, placed=False)
        with pytest.raises(KeyError):
            reconstruct_path(engine.run(), "ghost", "rise")

    def test_path_str(self, lib, liberty):
        engine = make_engine(inverter_chain(3), lib, liberty, placed=False)
        (path,) = top_paths(engine.run(), 1)
        assert "inv0 -> inv1 -> inv2" in str(path)


class TestDerates:
    def test_shorter_gates_speed_up(self, lib, liberty, model):
        netlist = inverter_chain(6)
        engine = make_engine(netlist, lib, liberty, placed=False)
        nominal = engine.run().critical_delay
        derates = {
            f"inv{i}": derate_for_delta_l(lib["INV_X1"], -8.0, model) for i in range(6)
        }
        faster = engine.run(derates=derates).critical_delay
        assert faster < nominal

    def test_longer_gates_slow_down(self, lib, liberty, model):
        netlist = inverter_chain(6)
        engine = make_engine(netlist, lib, liberty, placed=False)
        nominal = engine.run().critical_delay
        derates = {
            f"inv{i}": derate_for_delta_l(lib["INV_X1"], +8.0, model) for i in range(6)
        }
        assert engine.run(derates=derates).critical_delay > nominal

    def test_cap_scale_loads_driver(self, lib, liberty):
        netlist = inverter_chain(3)
        engine = make_engine(netlist, lib, liberty, placed=False)
        nominal = engine.run().critical_delay
        # Bloat inv1's input cap: inv0 sees a heavier load.
        derates = {"inv1": InstanceDerate(cap_scale=2.0)}
        assert engine.run(derates=derates).critical_delay > nominal

    def make_measurement(self, rect, drawn, cds):
        m = GateCdMeasurement(gate_rect=rect, drawn_cd=drawn)
        m.slice_positions = list(range(len(cds)))
        m.slice_cds = list(cds)
        return m

    def test_derates_from_measurements(self, lib, liberty, model):
        netlist = inverter_chain(2)
        inv = lib["INV_X1"]
        measurements = {}
        for t in inv.transistors:
            # inv0 prints 8nm short -> faster; inv1 at drawn.
            measurements[("inv0", t.name)] = self.make_measurement(
                t.gate_rect, t.length, [t.length - 8.0] * 3
            )
            measurements[("inv1", t.name)] = self.make_measurement(
                t.gate_rect, t.length, [t.length] * 3
            )
        derates = derates_from_measurements(netlist, lib, measurements, model)
        assert derates["inv0"].delay_rise_scale < 1.0
        assert derates["inv0"].cap_scale < 1.0
        assert derates["inv1"].delay_rise_scale == pytest.approx(1.0, abs=1e-3)

    def test_failed_gate_flagged(self, lib, model):
        netlist = inverter_chain(1)
        inv = lib["INV_X1"]
        t = inv.transistors[0]
        measurements = {
            ("inv0", t.name): self.make_measurement(t.gate_rect, t.length, [90.0, 0.0, 90.0])
        }
        derates = derates_from_measurements(netlist, lib, measurements, model)
        assert derates["inv0"].failed

    def test_unmeasured_instances_skipped(self, lib, model):
        netlist = inverter_chain(2)
        derates = derates_from_measurements(netlist, lib, {}, model)
        assert derates == {}

    def test_instance_leakage_short_gates_leak_more(self, lib, model):
        netlist = inverter_chain(2)
        inv = lib["INV_X1"]
        measurements = {}
        for t in inv.transistors:
            measurements[("inv0", t.name)] = self.make_measurement(
                t.gate_rect, t.length, [t.length - 10.0] * 3
            )
        leaks = instance_leakage(netlist, lib, measurements, model)
        assert leaks["inv0"] > leaks["inv1"]


class TestCornersAndMc:
    def test_corner_ordering(self, lib, liberty, model):
        engine = make_engine(ripple_carry_adder(4), lib, liberty)
        corners = run_corners(engine, model)
        assert corners["slow"] < corners["typical"] < corners["fast"]

    def test_custom_corner(self, lib, liberty, model):
        engine = make_engine(inverter_chain(4), lib, liberty, placed=False)
        corners = run_corners(engine, model, corners=(CornerSpec("wild", 12.0),))
        assert set(corners) == {"wild"}

    def test_mc_within_corner_bounds(self, lib, liberty, model):
        engine = make_engine(ripple_carry_adder(4), lib, liberty)
        corners = run_corners(engine, model)
        mc = run_monte_carlo(engine, model, samples=25,
                             spec=CdVariationSpec(sigma_random_nm=1.5,
                                                  sigma_correlated_nm=1.5))
        # Corners (all gates simultaneously +-6nm) must bound the MC spread.
        assert corners["slow"] <= mc.min_wns
        assert mc.mean_wns <= corners["fast"]

    def test_mc_reproducible(self, lib, liberty, model):
        engine = make_engine(inverter_chain(5), lib, liberty, placed=False)
        a = run_monte_carlo(engine, model, samples=10)
        b = run_monte_carlo(engine, model, samples=10)
        assert a.wns_samples == b.wns_samples

    def test_mc_statistics(self, lib, liberty, model):
        engine = make_engine(inverter_chain(5), lib, liberty, placed=False)
        mc = run_monte_carlo(engine, model, samples=30)
        assert mc.sigma_wns > 0
        assert mc.min_wns <= mc.percentile_wns(1) <= mc.percentile_wns(99)

    def test_base_derates_compose(self, lib, liberty, model):
        engine = make_engine(inverter_chain(5), lib, liberty, placed=False)
        slow_base = {
            f"inv{i}": InstanceDerate(delay_rise_scale=1.5, delay_fall_scale=1.5)
            for i in range(5)
        }
        plain = run_monte_carlo(engine, model, samples=5)
        derated = run_monte_carlo(engine, model, samples=5, base_derates=slow_base)
        assert derated.mean_wns < plain.mean_wns
