"""Tests for LER injection and process-window extraction."""

import numpy as np
import pytest

from repro.geometry import Rect
from repro.litho import LithographySimulator, bossung_data, extract_process_window
from repro.litho.window import BossungData
from repro.metrology.gate_cd import GateCdMeasurement
from repro.pdk import make_tech_90nm
from repro.variation import apply_ler


def make_measurement(key_cd=90.0, n=5):
    m = GateCdMeasurement(gate_rect=Rect(0, 0, 90, 400), drawn_cd=90)
    m.slice_positions = [20.0 + 90 * i for i in range(n)]
    m.slice_cds = [key_cd] * n
    return m


class TestLer:
    def test_noise_statistics(self):
        base = {i: make_measurement() for i in range(100)}
        noisy = apply_ler(base, sigma_nm=2.0, seed=1)
        deltas = np.array([
            cd - 90.0 for m in noisy.values() for cd in m.slice_cds
        ])
        assert abs(deltas.mean()) < 0.3
        assert deltas.std() == pytest.approx(2.0 * 2 ** 0.5, rel=0.15)

    def test_originals_untouched(self):
        base = {0: make_measurement()}
        apply_ler(base, sigma_nm=3.0)
        assert base[0].slice_cds == [90.0] * 5

    def test_seeded_reproducible(self):
        base = {0: make_measurement()}
        a = apply_ler(base, sigma_nm=2.0, seed=9)
        b = apply_ler(base, sigma_nm=2.0, seed=9)
        assert a[0].slice_cds == b[0].slice_cds

    def test_open_slices_stay_open(self):
        m = make_measurement()
        m.slice_cds[2] = 0.0
        noisy = apply_ler({0: m}, sigma_nm=2.0)
        assert noisy[0].slice_cds[2] == 0.0

    def test_zero_sigma_identity(self):
        base = {0: make_measurement()}
        noisy = apply_ler(base, sigma_nm=0.0)
        assert noisy[0].slice_cds == base[0].slice_cds

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            apply_ler({}, sigma_nm=-1.0)


class TestProcessWindow:
    @pytest.fixture(scope="class")
    def data(self):
        tech = make_tech_90nm()
        sim = LithographySimulator.for_tech(tech)
        sim.calibrate_to_anchor(tech.rules.gate_length, tech.rules.poly_pitch)
        return bossung_data(
            sim, 90.0, 320.0,
            doses=(0.94, 0.97, 1.0, 1.03, 1.06),
            defoci=(0.0, 150.0, 300.0),
        )

    def test_grid_complete(self, data):
        assert len(data.cd) == 15
        assert data.doses() == [0.94, 0.97, 1.0, 1.03, 1.06]

    def test_nominal_on_target(self, data):
        assert data.cd[(1.0, 0.0)] == pytest.approx(90, abs=1.5)

    def test_bossung_curve_monotone_in_dose(self, data):
        curve = data.curve_at_defocus(0.0)
        cds = [cd for _, cd in curve]
        assert cds == sorted(cds, reverse=True)  # dark line thins with dose

    def test_window_extraction(self, data):
        window = extract_process_window(data, cd_tolerance_fraction=0.1)
        assert 0.0 in window.latitude
        lo, hi = window.latitude[0.0]
        assert lo < 1.0 < hi
        assert window.exposure_latitude_percent(0.0) > 2.0

    def test_latitude_shrinks_with_defocus(self, data):
        window = extract_process_window(data, cd_tolerance_fraction=0.1)
        el0 = window.exposure_latitude_percent(0.0)
        el300 = window.exposure_latitude_percent(300.0)
        assert el300 < el0

    def test_depth_of_focus(self, data):
        window = extract_process_window(data, cd_tolerance_fraction=0.1)
        dof = window.depth_of_focus(min_latitude_percent=2.0)
        assert dof in (0.0, 150.0, 300.0)
        assert dof >= 150.0  # the anchor has usable focus budget

    def test_synthetic_window(self):
        data = BossungData(line_width=100, pitch=300)
        for dose in (0.9, 1.0, 1.1):
            for z in (0.0, 100.0):
                # CD shrinks 100 nm per dose unit, plus defocus penalty.
                data.cd[(dose, z)] = 100 - (dose - 1.0) * 100 - (z / 100) * 6
        # 0.101: the extreme doses sit exactly on the 10% boundary and
        # float rounding must not drop them.
        window = extract_process_window(data, cd_tolerance_fraction=0.101)
        assert window.latitude[0.0] == (0.9, 1.1)
        assert window.exposure_latitude_percent(0.0) == pytest.approx(20.0)
