"""Tests for across-chip dose/defocus maps."""

import pytest

from repro.geometry import Rect
from repro.variation import DoseDefocusMap, condition_at, uniform_map


DIE = Rect(0, 0, 20000, 10000)


class TestDoseDefocusMap:
    def test_bounded_by_amplitude(self):
        m = DoseDefocusMap(DIE, dose_amplitude=0.05, defocus_amplitude_nm=100)
        for x in range(0, 20001, 2500):
            for y in range(0, 10001, 2500):
                assert abs(m.dose_at(x, y) - 1.0) <= 0.05 + 1e-12
                assert abs(m.defocus_at(x, y)) <= 100 + 1e-9

    def test_smooth_at_small_scale(self):
        m = DoseDefocusMap(DIE)
        a = m.dose_at(5000, 5000)
        b = m.dose_at(5050, 5000)
        assert abs(a - b) < 1e-3  # 50 nm apart: essentially identical

    def test_varies_across_die(self):
        m = DoseDefocusMap(DIE, seed=3)
        values = {round(m.dose_at(x, 3000), 6) for x in range(0, 20001, 4000)}
        assert len(values) > 1

    def test_seeded_reproducible(self):
        a = DoseDefocusMap(DIE, seed=7)
        b = DoseDefocusMap(DIE, seed=7)
        assert a.dose_at(1234, 5678) == b.dose_at(1234, 5678)
        c = DoseDefocusMap(DIE, seed=8)
        assert a.dose_at(1234, 5678) != c.dose_at(1234, 5678)

    def test_condition_at(self):
        m = DoseDefocusMap(DIE)
        cond = condition_at(m, Rect(1000, 1000, 1100, 1100))
        assert cond.dose == pytest.approx(m.dose_at(1050, 1050))
        assert cond.defocus_nm == pytest.approx(m.defocus_at(1050, 1050))

    def test_uniform_map(self):
        m = uniform_map(DIE, dose=1.05, defocus_nm=150)
        assert m.dose_at(0, 0) == 1.05
        assert m.dose_at(19999, 9999) == 1.05
        assert m.defocus_at(5, 5) == 150
